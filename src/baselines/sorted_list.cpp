#include "baselines/sorted_list.hpp"

#include <algorithm>

namespace repro::baselines {

std::uint64_t intersect_size_merge(std::span<const std::uint32_t> a,
                                   std::span<const std::uint32_t> b) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::uint64_t intersect_size_branchless(std::span<const std::uint32_t> a,
                                        std::span<const std::uint32_t> b) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  const std::size_t na = a.size(), nb = b.size();
  while (i < na && j < nb) {
    const std::uint32_t x = a[i];
    const std::uint32_t y = b[j];
    count += (x == y);
    i += (x <= y);
    j += (y <= x);
  }
  return count;
}

std::uint64_t intersect_size_galloping(std::span<const std::uint32_t> a,
                                       std::span<const std::uint32_t> b) {
  // Probe each element of the smaller list into the larger with a doubling
  // search that resumes where the previous probe ended.
  if (a.size() > b.size()) return intersect_size_galloping(b, a);
  std::uint64_t count = 0;
  std::size_t lo = 0;
  for (const std::uint32_t x : a) {
    // Gallop to find the first position with b[pos] >= x.
    std::size_t step = 1;
    std::size_t hi = lo;
    while (hi < b.size() && b[hi] < x) {
      lo = hi + 1;
      hi += step;
      step *= 2;
    }
    hi = std::min(hi, b.size());
    const auto it = std::lower_bound(b.begin() + static_cast<std::ptrdiff_t>(lo),
                                     b.begin() + static_cast<std::ptrdiff_t>(hi), x);
    lo = static_cast<std::size_t>(it - b.begin());
    if (lo < b.size() && b[lo] == x) {
      ++count;
      ++lo;
    }
  }
  return count;
}

std::size_t intersect_into(std::span<const std::uint32_t> a,
                           std::span<const std::uint32_t> b,
                           std::uint32_t* out) {
  std::size_t i = 0, j = 0, k = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out[k++] = a[i];
      ++i;
      ++j;
    }
  }
  return k;
}

}  // namespace repro::baselines
