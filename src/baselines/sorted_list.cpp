#include "baselines/sorted_list.hpp"

#include "core/row_container.hpp"

namespace repro::baselines {

// The implementations live in core/row_container.cpp — the sorted-list
// kernels are first-class snapshot citizens now, and the baselines share
// that single implementation.

std::uint64_t intersect_size_merge(std::span<const std::uint32_t> a,
                                   std::span<const std::uint32_t> b) {
  return core::list_intersect_count_merge(a, b);
}

std::uint64_t intersect_size_branchless(std::span<const std::uint32_t> a,
                                        std::span<const std::uint32_t> b) {
  return core::list_intersect_count_branchless(a, b);
}

std::uint64_t intersect_size_galloping(std::span<const std::uint32_t> a,
                                       std::span<const std::uint32_t> b) {
  return core::list_intersect_count_gallop(a, b);
}

std::size_t intersect_into(std::span<const std::uint32_t> a,
                           std::span<const std::uint32_t> b,
                           std::uint32_t* out) {
  return core::list_intersect_into(a, b, out);
}

}  // namespace repro::baselines
