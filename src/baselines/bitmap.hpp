// Dense vertical bitmap representation — the layout of Fang et al.'s
// PBI-GPU algorithm [11], the paper's main GPU point of comparison.
//
// Each item's tidlist is one m-bit row; pair support = popcount(row_i AND
// row_j). Space is n·m bits regardless of density, which is exactly the
// weakness (excessive space on sparse data) BATMAP addresses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mining/pair_support.hpp"
#include "mining/transaction_db.hpp"

namespace repro::baselines {

class BitmapIndex {
 public:
  /// Builds the n × ⌈m/64⌉ bit matrix from the vertical representation.
  explicit BitmapIndex(const mining::TransactionDb& db);

  std::uint32_t num_items() const { return n_; }
  std::uint64_t num_transactions() const { return m_; }
  std::uint64_t words_per_row() const { return row_words_; }

  std::span<const std::uint64_t> row(std::uint32_t item) const {
    return {bits_.data() + item * row_words_, row_words_};
  }

  /// |S_i ∩ S_j| by AND + popcount (core::dense_intersect_count — the same
  /// kernel that serves RowLayout::kDense snapshot rows).
  std::uint64_t intersection_size(std::uint32_t i, std::uint32_t j) const;

  /// All pair supports (the PBI counting pass).
  mining::PairSupports all_pair_supports() const;

  std::uint64_t memory_bytes() const { return bits_.size() * 8; }

  // Unified RowContainer-style names.
  std::uint64_t support(std::uint32_t item) const;
  std::uint64_t intersect_count(std::uint32_t i, std::uint32_t j) const {
    return intersection_size(i, j);
  }
  std::uint64_t bytes() const { return memory_bytes(); }

 private:
  std::uint32_t n_ = 0;
  std::uint64_t m_ = 0;
  std::uint64_t row_words_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace repro::baselines
