// Eclat (Zaki et al., KDD'97) — vertical tidlist mining, mentioned by the
// paper as "significantly slower than the other three implementations".
// Included for completeness of the comparison suite.
//
// * eclat_pair_supports — all-pairs sorted-tidlist intersection (exactly
//   what BATMAP replaces with position-aligned comparisons).
// * Eclat::mine — depth-first itemset mining with tidlist intersection.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "baselines/apriori.hpp"  // FrequentItemset
#include "mining/pair_support.hpp"
#include "mining/transaction_db.hpp"
#include "util/mem_accounting.hpp"
#include "util/timer.hpp"

namespace repro::baselines {

/// All pair supports by pairwise merge-intersecting tidlists. Returns
/// nullopt on deadline expiry.
std::optional<mining::PairSupports> eclat_pair_supports(
    const mining::TransactionDb& db, const Deadline& deadline,
    MemAccount* mem = nullptr);

inline std::optional<mining::PairSupports> eclat_pair_supports(
    const mining::TransactionDb& db) {
  const Deadline no_limit(0);
  return eclat_pair_supports(db, no_limit);
}

class Eclat {
 public:
  struct Options {
    std::uint32_t minsup = 2;
    std::size_t max_size = 0;  ///< 0 = unbounded
  };

  explicit Eclat(Options opt) : opt_(opt) {}

  std::vector<FrequentItemset> mine(const mining::TransactionDb& db) const;

 private:
  struct Class {
    mining::Item item;
    std::vector<mining::Tid> tids;
  };
  void recurse(std::vector<Class>& classes, std::vector<mining::Item>& prefix,
               std::vector<FrequentItemset>& out) const;
  Options opt_;
};

}  // namespace repro::baselines
