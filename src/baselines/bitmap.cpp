#include "baselines/bitmap.hpp"

#include "core/row_container.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace repro::baselines {

BitmapIndex::BitmapIndex(const mining::TransactionDb& db)
    : n_(db.num_items()),
      m_(db.num_transactions()),
      row_words_(bits::ceil_div(m_, 64)) {
  REPRO_CHECK(n_ >= 1 && m_ >= 1);
  bits_.assign(static_cast<std::size_t>(n_) * row_words_, 0ull);
  for (std::size_t t = 0; t < db.num_transactions(); ++t) {
    for (const mining::Item i : db.transaction(t)) {
      bits_[i * row_words_ + (t >> 6)] |= 1ull << (t & 63);
    }
  }
}

std::uint64_t BitmapIndex::intersection_size(std::uint32_t i,
                                             std::uint32_t j) const {
  REPRO_DCHECK(i < n_ && j < n_);
  return core::dense_intersect_count(row(i), row(j));
}

std::uint64_t BitmapIndex::support(std::uint32_t item) const {
  REPRO_DCHECK(item < n_);
  std::uint64_t count = 0;
  for (const std::uint64_t w : row(item)) count += bits::popcount64(w);
  return count;
}

mining::PairSupports BitmapIndex::all_pair_supports() const {
  mining::PairSupports supports(n_);
  for (std::uint32_t i = 0; i < n_; ++i) {
    for (std::uint32_t j = i + 1; j < n_; ++j) {
      supports.set(i, j,
                   static_cast<std::uint32_t>(intersection_size(i, j)));
    }
  }
  return supports;
}

}  // namespace repro::baselines
