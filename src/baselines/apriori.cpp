#include "baselines/apriori.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace repro::baselines {

std::optional<mining::PairSupports> apriori_pair_supports(
    const mining::TransactionDb& db, const Deadline& deadline,
    MemAccount* mem) {
  REPRO_CHECK(db.num_items() >= 2);
  mining::PairSupports supports(db.num_items());
  if (mem) mem->add("apriori pair counters", supports.memory_bytes());
  std::size_t t = 0;
  for (const auto& txn : db.transactions()) {
    for (std::size_t a = 0; a < txn.size(); ++a) {
      for (std::size_t b = a + 1; b < txn.size(); ++b) {
        supports.increment(txn[a], txn[b]);
      }
    }
    // Check the deadline at transaction granularity: cheap and sufficient.
    if ((++t & 0x3ff) == 0 && deadline.expired()) return std::nullopt;
  }
  if (deadline.expired()) return std::nullopt;
  return supports;
}

namespace {

using Itemset = std::vector<mining::Item>;

/// Candidate generation: join frequent k-itemsets sharing a (k-1)-prefix,
/// then prune candidates with an infrequent k-subset.
std::vector<Itemset> generate_candidates(const std::vector<Itemset>& level) {
  std::vector<Itemset> candidates;
  for (std::size_t a = 0; a < level.size(); ++a) {
    for (std::size_t b = a + 1; b < level.size(); ++b) {
      const Itemset& x = level[a];
      const Itemset& y = level[b];
      if (!std::equal(x.begin(), x.end() - 1, y.begin(), y.end() - 1)) {
        // level is sorted lexicographically; once prefixes diverge no later
        // y can share x's prefix.
        break;
      }
      Itemset cand(x);
      cand.push_back(y.back());
      if (cand[cand.size() - 2] > cand.back())
        std::swap(cand[cand.size() - 2], cand.back());
      // Prune: every (k-1)-subset must be frequent (i.e. in `level`).
      bool ok = true;
      Itemset sub(cand.size() - 1);
      for (std::size_t drop = 0; ok && drop + 2 < cand.size(); ++drop) {
        std::size_t w = 0;
        for (std::size_t r = 0; r < cand.size(); ++r)
          if (r != drop) sub[w++] = cand[r];
        ok = std::binary_search(level.begin(), level.end(), sub);
      }
      if (ok) candidates.push_back(std::move(cand));
    }
  }
  return candidates;
}

bool contains_subset(std::span<const mining::Item> txn, const Itemset& set) {
  // txn and set are sorted; two-pointer subset test.
  std::size_t i = 0;
  for (const mining::Item x : set) {
    while (i < txn.size() && txn[i] < x) ++i;
    if (i >= txn.size() || txn[i] != x) return false;
    ++i;
  }
  return true;
}

}  // namespace

std::vector<FrequentItemset> Apriori::mine(
    const mining::TransactionDb& db) const {
  std::vector<FrequentItemset> result;

  // Level 1: item supports.
  const auto item_support = db.item_supports();
  std::vector<Itemset> level;
  for (mining::Item i = 0; i < db.num_items(); ++i) {
    if (item_support[i] >= opt_.minsup) {
      level.push_back({i});
      result.push_back({{i}, item_support[i]});
    }
  }

  std::size_t k = 2;
  while (!level.empty() && (opt_.max_size == 0 || k <= opt_.max_size)) {
    const std::vector<Itemset> candidates = generate_candidates(level);
    if (candidates.empty()) break;
    // Count candidates with a sorted map from itemset -> count. (A hash
    // tree would be faster; the map keeps the code simple and the
    // asymptotics identical for the evaluation sizes used here.)
    std::map<Itemset, std::uint32_t> counts;
    for (const auto& c : candidates) counts.emplace(c, 0);
    for (const auto& txn : db.transactions()) {
      if (txn.size() < k) continue;
      for (auto& [cand, count] : counts) {
        if (contains_subset(txn, cand)) ++count;
      }
    }
    level.clear();
    for (const auto& [cand, count] : counts) {
      if (count >= opt_.minsup) {
        level.push_back(cand);
        result.push_back({cand, count});
      }
    }
    std::sort(level.begin(), level.end());
    ++k;
  }
  return result;
}

}  // namespace repro::baselines
