// WAH (Word-Aligned Hybrid) compressed bitmaps — Wu, Otoo & Shoshani,
// VLDB'04 [27], one of the compressed-bitmap formats the paper positions
// BATMAP against (§I-B1): compact on sparse data, but intersection requires
// SEQUENTIAL decoding of variable-length runs, which is exactly the
// data-dependent control flow that does not map to GPUs. The codec itself
// lives in core/row_container.{hpp,cpp} (RowLayout::kWah is a first-class
// snapshot row container); this class is the owning benchmark-side wrapper.
//
// Encoding (32-bit words over 31-bit groups):
//   MSB = 0: literal word, low 31 bits are the next 31 bitmap bits.
//   MSB = 1: fill word; bit 30 = fill value, low 30 bits = run length in
//            31-bit groups.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mining/transaction_db.hpp"

namespace repro::baselines {

class WahBitmap {
 public:
  WahBitmap() = default;

  /// Compresses a sorted, duplicate-free id list over [0, universe).
  WahBitmap(std::span<const std::uint32_t> sorted_ids, std::uint64_t universe);

  std::uint64_t universe() const { return universe_; }
  std::uint64_t ones() const { return ones_; }
  std::uint64_t memory_bytes() const { return words_.size() * 4; }
  std::span<const std::uint32_t> words() const { return words_; }

  /// Decompresses back to the id list (for tests).
  std::vector<std::uint32_t> decode() const;

  /// |A ∩ B| by run-aligned sequential merge of the two compressed streams.
  static std::uint64_t intersect_size(const WahBitmap& a, const WahBitmap& b);

  // Unified RowContainer-style names.
  std::uint64_t support() const { return ones_; }
  std::uint64_t bytes() const { return memory_bytes(); }
  static std::uint64_t intersect_count(const WahBitmap& a, const WahBitmap& b) {
    return intersect_size(a, b);
  }

 private:
  std::uint64_t universe_ = 0;
  std::uint64_t ones_ = 0;
  std::vector<std::uint32_t> words_;
};

/// A WAH index over a transaction database (vertical layout), mirroring
/// BitmapIndex's interface for the space/time comparison benches.
class WahIndex {
 public:
  explicit WahIndex(const mining::TransactionDb& db);

  std::uint32_t num_items() const {
    return static_cast<std::uint32_t>(rows_.size());
  }
  const WahBitmap& row(std::uint32_t item) const { return rows_[item]; }
  std::uint64_t intersection_size(std::uint32_t i, std::uint32_t j) const {
    return WahBitmap::intersect_size(rows_[i], rows_[j]);
  }
  std::uint64_t memory_bytes() const;

  // Unified RowContainer-style names.
  std::uint64_t support(std::uint32_t item) const { return rows_[item].ones(); }
  std::uint64_t intersect_count(std::uint32_t i, std::uint32_t j) const {
    return intersection_size(i, j);
  }
  std::uint64_t bytes() const { return memory_bytes(); }

 private:
  std::vector<WahBitmap> rows_;
};

}  // namespace repro::baselines
