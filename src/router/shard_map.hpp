// Consistent-hash partitioning of set ids across batmap_serve shards.
//
// Classic ring construction: every shard contributes `vnodes` points on a
// 64-bit ring (hashed from (seed, shard, vnode) — nothing process-local),
// and a set id belongs to the shard owning the first ring point at or
// after the id's own hash, wrapping at the top. Two properties the router
// tier is built on:
//
//  * Determinism: the assignment is a pure function of (shards, vnodes,
//    seed), so `batmap_cli shard-split`, the router, and every test agree
//    on who owns what without exchanging state.
//  * Stability: growing N shards to N+1 only inserts new ring points, so
//    an id moves only if a new point landed between its hash and its old
//    successor — i.e. only *into* the new shard, ~1/(N+1) of all ids.
//    Shrinking is symmetric. shard_map_test pins both.
//
// Shards address sets by dense local ids. `partition(total)` derives the
// global<->local mapping the router and shard-split share: shard s serves
// the ascending sequence of global ids it owns, and a global id's local id
// is its rank in that sequence.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace repro::router {

class ShardMap {
 public:
  struct Options {
    std::uint32_t shards = 1;
    /// Ring points per shard. More points tighten the balance spread at
    /// O(shards·vnodes·log) build cost; 64 keeps the max/mean load under
    /// ~1.35 across the configurations shard_map_test sweeps.
    std::uint32_t vnodes = 64;
    /// Ring salt. Every participant must use the same value (the default
    /// is the wire default; shard-split and the router only override it
    /// together via --ring-seed).
    std::uint64_t seed = 0xba72a9005eedull;
  };

  explicit ShardMap(Options opt);

  std::uint32_t shard_of(std::uint64_t id) const;
  std::uint32_t shard_count() const { return opt_.shards; }
  const Options& options() const { return opt_; }

  /// The dense-id-space view for a corpus of `total` sets.
  struct Partition {
    /// Per shard: the global set ids it owns, ascending. Position == the
    /// set's local id on that shard.
    std::vector<std::vector<std::uint32_t>> owned;
    std::vector<std::uint32_t> shard_of_id;  ///< global id -> shard
    std::vector<std::uint32_t> local_of_id;  ///< global id -> local id
  };
  Partition partition(std::uint32_t total) const;

 private:
  Options opt_;
  /// (ring point, shard), sorted by point then shard — the tie order is
  /// part of the wire contract, so equal points resolve identically in
  /// every process.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

}  // namespace repro::router
