// The sharded serving tier's routing engine: speaks the client-facing
// query protocol on one side and the per-shard batmap_serve protocol
// (including the internal X verb) on the other.
//
// Topology: every shard serves the slice of a common corpus that the
// shared ShardMap assigns it (cut by `batmap_cli shard-split`), addressed
// by dense local ids. The router owns the global<->local translation and
// keeps one pipelined ShardClient per shard.
//
// Routing rules per verb:
//   I/S/A/D  both/all ids on one shard -> direct forward (ids translated);
//            cross-shard I/S run as a two-hop semi-join: fetch the probe
//            row (X J exact / X RJ stored), intersect at the other owner
//            (X I / X RI).
//   T        fetch S_a's membership at its owner (X J), scatter X T with
//            that list to every shard (per-shard k' = k prefetch, probe
//            set excluded on its owner), merge through the engine's
//            canonical (count desc, id asc) ranking with global ids.
//   K/R      all operands on one shard -> direct forward; otherwise
//            semi-join (ROADMAP 5b): group operands by owning shard,
//            visit groups in ascending min-support order starting at the
//            shard owning the smallest operand, and forward the shrinking
//            intermediate element list (X J first hop, X I after). R adds
//            one final hop for the consequent; an empty intermediate
//            short-circuits the rest.
//   FLUSH/RELOAD fan out to every shard with all-or-nothing reporting;
//            RELOAD re-handshakes (X Z) so a corpus swap that changes the
//            partition is caught instead of silently misrouted.
//   STATS    aggregates shard gauges (sums; epoch and max_batch take the
//            max) and appends router-local counters: fanout histogram,
//            semi-join forwards, backpressure rejections, retries.
//
// Backpressure: a shard's `ERR OVERLOAD retry_ms=<n>` reply arms that
// shard's retry horizon; until it passes, every query touching the shard
// is rejected at the router with `ERR OVERLOAD retry_ms=<max remaining>`
// instead of piling onto the shedding shard. Deadlines propagate with the
// router hop's budget decremented: each forwarded line carries the
// remaining milliseconds, and every hop re-checks before sending.
//
// Error vocabulary is the serve vocabulary plus one router-only type:
// `ERR UNAVAILABLE shard=<s>` when a shard connection is down and the
// in-deadline retry failed. Error replies never advance the fingerprint,
// so valid-query streams fingerprint byte-identically across topologies.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "router/shard_client.hpp"
#include "router/shard_map.hpp"
#include "service/query_engine.hpp"

namespace repro::router {

class RouterCore {
 public:
  static constexpr std::uint32_t kMaxShards = 64;

  struct Options {
    std::vector<std::uint16_t> ports;  ///< one batmap_serve per port
    std::uint32_t vnodes = ShardMap::Options{}.vnodes;
    std::uint64_t ring_seed = ShardMap::Options{}.seed;
    std::size_t max_reply = 1u << 22;
  };

  /// Connects and handshakes (X Z) with every shard; throws CheckError
  /// when a shard is unreachable or the per-shard set counts don't match
  /// the ShardMap partition (corpus split with different parameters).
  explicit RouterCore(Options opt);

  struct Reply {
    bool ok = false;
    service::Result result;  ///< valid when ok; fold/format from this
    std::string error;       ///< full typed error line when !ok
  };

  /// Executes one read or write query. deadline_ns == 0 means none.
  Reply execute(const service::Query& q, std::uint64_t deadline_ns);

  /// Control verbs; each returns the full protocol reply line.
  ///
  /// RELOAD: with an empty prefix every shard reloads its own last path;
  /// otherwise shard s reloads "<prefix>.<s>.snap" (shard-split's naming).
  /// All-or-nothing reporting, then a re-handshake revalidates the
  /// partition against the reloaded corpus.
  std::string reload(const std::string& prefix);
  std::string flush();
  std::string stats_line();

  std::uint32_t total_sets() const { return total_; }
  std::uint64_t universe() const { return universe_; }
  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(clients_.size());
  }
  const ShardMap::Partition& partition() const { return part_; }

 private:
  enum class Hop { kOk, kErrLine, kUnavailable, kTimeout };

  /// One exchange with shard `s`, retrying once through a lazy reconnect
  /// on connection failure (reads are idempotent; writes pass
  /// `retry=false` and surface the failure instead).
  Hop exchange(std::uint32_t s, const std::string& line,
               std::uint64_t deadline_ns, std::string& reply, bool retry);

  /// Arms shard s's backpressure horizon if `reply` is an OVERLOAD.
  void note_overload(std::uint32_t s, const std::string& reply);
  /// True when any shard in `mask` is inside its retry horizon; fills the
  /// worst remaining hint.
  bool gated(std::uint64_t mask, std::uint64_t& retry_ms);

  Reply execute_impl(const service::Query& q, std::uint64_t deadline_ns,
                     std::uint64_t& touched);
  Reply forward_parsed(std::uint32_t s, const std::string& line,
                       std::uint64_t deadline_ns, const service::Query& q);
  /// Semi-join over global set ids (caller holds state_mu_ shared). On
  /// failure fills `err` with the full typed error line.
  Hop semi_join_ids(std::span<const std::uint32_t> gids,
                    std::uint64_t deadline_ns,
                    std::vector<std::uint64_t>& list, std::string& err);

  void handshake();  ///< X Z all shards, rebuild partition + supports

  Options opt_;
  std::vector<std::unique_ptr<ShardClient>> clients_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> retry_until_ns_;

  /// Guards the corpus-shape state below: queries read under a shared
  /// lock, the post-RELOAD re-handshake swaps under an exclusive one.
  mutable std::shared_mutex state_mu_;
  std::uint32_t total_ = 0;
  std::uint64_t universe_ = 0;
  ShardMap::Partition part_;
  std::vector<std::uint64_t> supports_;  ///< by global id (planning only)

  // Router-local counters (STATS).
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> direct_forwards_{0};
  std::atomic<std::uint64_t> scatter_topk_{0};
  std::atomic<std::uint64_t> semi_join_queries_{0};
  std::atomic<std::uint64_t> semi_join_forwards_{0};
  std::atomic<std::uint64_t> backpressure_rejections_{0};
  std::atomic<std::uint64_t> overloads_seen_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> unavailable_{0};
  std::atomic<std::uint64_t> fanout_hist_[kMaxShards + 1] = {};
};

}  // namespace repro::router
