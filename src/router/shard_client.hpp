// One persistent line-protocol connection to a batmap_serve shard, safe
// for concurrent router threads.
//
// The shard protocol is strictly one reply line per request line, in
// order, so the connection is pipelined FIFO: a sender appends its line
// and a completion slot under the lock, and a single reader thread matches
// incoming reply lines to slots front-to-back. Concurrent requests from
// different router connections interleave on the wire without waiting for
// each other's replies — the "one persistent connection per shard" model.
//
// A sender whose deadline expires abandons its slot; the reader still
// consumes the matching reply line when it arrives (protocol positions
// must stay aligned) and discards it. On EOF/write failure every pending
// slot fails with kConnFail, the socket is torn down, and the next request
// reconnects lazily — the router retries idempotent reads within their
// deadline and surfaces typed errors for everything else.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace repro::router {

class ShardClient {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< on 127.0.0.1 (shards are loopback-only)
    /// Longest accepted reply line. Semi-join and top-k scatter replies
    /// carry element lists, so this is far above batmap_serve's request
    /// default.
    std::size_t max_reply = 1u << 22;
  };

  explicit ShardClient(Options opt);
  ~ShardClient();

  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  enum class Io {
    kOk = 0,
    kConnFail = 1,  ///< connect/send/receive failed; connection torn down
    kTimeout = 2,   ///< deadline expired while waiting for the reply
  };

  /// One request/reply exchange. `line` must not contain '\n'.
  /// deadline_ns == 0 means no deadline (waits until reply or teardown).
  Io request(const std::string& line, std::uint64_t deadline_ns,
             std::string& reply);

  std::uint16_t port() const { return opt_.port; }
  std::uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

 private:
  struct Waiter {
    std::string reply;
    int state = 0;  // 0 pending, 1 done, 2 failed
    bool abandoned = false;
  };

  bool ensure_connected_locked();
  void teardown_locked();
  void reader_loop(int fd, std::uint64_t generation);

  Options opt_;
  std::mutex mu_;
  std::condition_variable cv_;
  int fd_ = -1;
  std::uint64_t generation_ = 0;  ///< bumps per (re)connect
  std::deque<std::shared_ptr<Waiter>> pending_;
  std::thread reader_;
  /// Readers of torn-down generations: unblocked (their fd was shut down)
  /// but not yet exited. Joining them inline would deadlock on mu_, so the
  /// destructor reaps them off-lock.
  std::vector<std::thread> retired_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> reconnects_{0};
};

}  // namespace repro::router
