#include "router/shard_map.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace repro::router {

namespace {

/// splitmix64 finalizer: FNV-style multiplicative hashes cluster in the
/// low bits, which would clump ring points; this avalanche stage makes
/// every output bit depend on every input bit. Fixed constants — the ring
/// is a cross-process wire contract, so no std::hash, no per-build salt.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ShardMap::ShardMap(Options opt) : opt_(opt) {
  REPRO_CHECK_MSG(opt_.shards >= 1, "ShardMap needs at least one shard");
  REPRO_CHECK_MSG(opt_.vnodes >= 1, "ShardMap needs at least one vnode");
  ring_.reserve(static_cast<std::size_t>(opt_.shards) * opt_.vnodes);
  for (std::uint32_t s = 0; s < opt_.shards; ++s) {
    for (std::uint32_t v = 0; v < opt_.vnodes; ++v) {
      const std::uint64_t point =
          mix64(opt_.seed ^ mix64((static_cast<std::uint64_t>(s) << 32) | v));
      ring_.emplace_back(point, s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::uint32_t ShardMap::shard_of(std::uint64_t id) const {
  const std::uint64_t h = mix64(id ^ opt_.seed);
  // First point at or after h, wrapping to the smallest point at the top.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, std::uint32_t>& p, std::uint64_t v) {
        return p.first < v;
      });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

ShardMap::Partition ShardMap::partition(std::uint32_t total) const {
  Partition p;
  p.owned.resize(opt_.shards);
  p.shard_of_id.resize(total);
  p.local_of_id.resize(total);
  for (std::uint32_t id = 0; id < total; ++id) {
    const std::uint32_t s = shard_of(id);
    p.shard_of_id[id] = s;
    p.local_of_id[id] = static_cast<std::uint32_t>(p.owned[s].size());
    p.owned[s].push_back(id);
  }
  return p;
}

}  // namespace repro::router
