#include "router/shard_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <utility>
#include <vector>

#include "service/line_io.hpp"
#include "service/query_engine.hpp"

namespace repro::router {

namespace {

std::chrono::steady_clock::time_point to_time_point(std::uint64_t ns) {
  return std::chrono::steady_clock::time_point(
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::nanoseconds(ns)));
}

/// MSG_NOSIGNAL: a shard that died mid-reply must surface as a write error
/// on this thread, not a process-wide SIGPIPE.
bool send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w <= 0) return false;
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

ShardClient::ShardClient(Options opt) : opt_(opt) {}

ShardClient::~ShardClient() {
  std::vector<std::thread> reap;
  {
    std::lock_guard lock(mu_);
    stop_.store(true, std::memory_order_relaxed);
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      fd_ = -1;
    }
    for (auto& w : pending_) {
      w->state = 2;
    }
    pending_.clear();
    cv_.notify_all();
    if (reader_.joinable()) reap.push_back(std::move(reader_));
    for (auto& t : retired_) reap.push_back(std::move(t));
    retired_.clear();
  }
  for (auto& t : reap) t.join();
}

bool ShardClient::ensure_connected_locked() {
  if (fd_ >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opt_.port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  ++generation_;
  if (generation_ > 1) reconnects_.fetch_add(1, std::memory_order_relaxed);
  // The previous reader (if any) is already unblocked — its fd was shut
  // down at teardown — but may not have exited yet; joining here would
  // deadlock on mu_, so retire it for the destructor to reap. One live
  // reader per generation; stale generations no-op on exit.
  if (reader_.joinable()) retired_.push_back(std::move(reader_));
  reader_ = std::thread(&ShardClient::reader_loop, this, fd_, generation_);
  return true;
}

void ShardClient::teardown_locked() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);  // the reader owns the close
    fd_ = -1;
  }
  for (auto& w : pending_) {
    w->state = 2;
  }
  pending_.clear();
  cv_.notify_all();
}

void ShardClient::reader_loop(int fd, std::uint64_t generation) {
  service::FdLineIo io(fd, fd, opt_.max_reply, &stop_);
  std::string line;
  for (;;) {
    const service::FdLineIo::Line st = io.read_line(line);
    if (st != service::FdLineIo::Line::kOk) break;  // kTooLong => desynced
    std::unique_lock lock(mu_);
    if (generation_ != generation) break;  // reconnected underneath us
    if (!pending_.empty()) {
      const std::shared_ptr<Waiter> w = std::move(pending_.front());
      pending_.pop_front();
      if (!w->abandoned) {
        w->reply = std::move(line);
        w->state = 1;
        cv_.notify_all();
      }
    }
    // else: reply for a waiter a teardown already failed — drop it.
  }
  {
    std::lock_guard lock(mu_);
    if (generation_ == generation) {
      fd_ = -1;
      for (auto& w : pending_) {
        w->state = 2;
      }
      pending_.clear();
      cv_.notify_all();
    }
  }
  ::close(fd);
}

ShardClient::Io ShardClient::request(const std::string& line,
                                     std::uint64_t deadline_ns,
                                     std::string& reply) {
  std::unique_lock lock(mu_);
  if (stop_.load(std::memory_order_relaxed)) return Io::kConnFail;
  if (!ensure_connected_locked()) return Io::kConnFail;
  std::string out = line;
  out.push_back('\n');
  if (!send_all(fd_, out.data(), out.size())) {
    teardown_locked();
    return Io::kConnFail;
  }
  auto w = std::make_shared<Waiter>();
  pending_.push_back(w);
  const auto done = [&] { return w->state != 0; };
  if (deadline_ns == 0) {
    cv_.wait(lock, done);
  } else if (!cv_.wait_until(lock, to_time_point(deadline_ns), done)) {
    // The reply (if it ever comes) still occupies this pipeline position;
    // the reader consumes and discards it.
    w->abandoned = true;
    return Io::kTimeout;
  }
  if (w->state != 1) return Io::kConnFail;
  reply = std::move(w->reply);
  return Io::kOk;
}

}  // namespace repro::router
