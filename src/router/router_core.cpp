#include "router/router_core.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <utility>

#include "service/protocol.hpp"
#include "util/check.hpp"

namespace repro::router {

namespace {

using service::Query;
using service::QueryKind;
using service::Result;
using service::TopEntry;

constexpr char kRangeErr[] = "ERR RANGE id or k out of range";
constexpr char kTimeoutErr[] = "ERR TIMEOUT deadline exceeded";
/// Sentinel local id for "no exclusion" on the X T scatter (UINT32_MAX).
constexpr std::uint32_t kNoExclude = 0xffffffffu;

std::uint64_t now_ns() { return service::QueryEngine::now_ns(); }

void append_u64(std::string& s, std::uint64_t v) {
  char tmp[24];
  const auto [end, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
  s.append(tmp, end);
}

std::string unavailable_line(std::uint32_t s) {
  std::string e = "ERR UNAVAILABLE shard=";
  append_u64(e, s);
  return e;
}

using Cur = service::proto::Cursor;

/// "OK <m> <e>..." -> out. False on any malformation.
bool parse_list(const std::string& reply, std::vector<std::uint64_t>& out) {
  Cur c{reply};
  std::string_view t;
  std::uint64_t m = 0;
  if (!c.tok(t) || t != "OK" || !c.u64(m) || m > (1u << 27)) return false;
  out.clear();
  out.reserve(m);
  std::uint64_t v = 0;
  for (std::uint64_t i = 0; i < m; ++i) {
    if (!c.u64(v)) return false;
    out.push_back(v);
  }
  return c.done();
}

/// "OK <c>" -> out.
bool parse_count(const std::string& reply, std::uint64_t& out) {
  Cur c{reply};
  std::string_view t;
  return c.tok(t) && t == "OK" && c.u64(out) && c.done();
}

/// "<id>:<cnt>" token.
bool parse_entry(std::string_view t, std::uint32_t& id, std::uint64_t& cnt) {
  const std::size_t colon = t.find(':');
  if (colon == std::string_view::npos) return false;
  return service::proto::parse_u32(t.substr(0, colon), id) &&
         service::proto::parse_u64(t.substr(colon + 1), cnt);
}

RouterCore::Reply err_reply(std::string e) {
  RouterCore::Reply r;
  r.ok = false;
  r.error = std::move(e);
  return r;
}

RouterCore::Reply ok_reply(Result res) {
  RouterCore::Reply r;
  r.ok = true;
  r.result = res;
  return r;
}

std::string overload_line(std::uint64_t retry_ms) {
  char tmp[48];
  std::snprintf(tmp, sizeof(tmp), "ERR OVERLOAD retry_ms=%" PRIu64, retry_ms);
  return tmp;
}

char op_of(QueryKind kind) {
  switch (kind) {
    case QueryKind::kIntersect: return 'I';
    case QueryKind::kSupport: return 'S';
    case QueryKind::kTopK: return 'T';
    case QueryKind::kKway: return 'K';
    case QueryKind::kRuleScore: return 'R';
    case QueryKind::kAdd: return 'A';
    case QueryKind::kDelete: return 'D';
    case QueryKind::kFlush: return 'F';
  }
  return 0;
}

/// Appends " <remaining_ms>" when the query carries a deadline — the
/// shard re-derives its own absolute deadline from the decremented
/// budget, so time already spent in the router counts against the query.
bool append_deadline(std::string& line, std::uint64_t deadline_ns) {
  if (deadline_ns == 0) return true;
  const std::uint64_t now = now_ns();
  if (now >= deadline_ns) return false;
  const std::uint64_t ms = (deadline_ns - now + 999'999) / 1'000'000;
  line.push_back(' ');
  append_u64(line, ms == 0 ? 1 : ms);
  return true;
}

}  // namespace

RouterCore::RouterCore(Options opt) : opt_(std::move(opt)) {
  REPRO_CHECK_MSG(!opt_.ports.empty(), "router needs at least one shard");
  REPRO_CHECK_MSG(opt_.ports.size() <= kMaxShards,
                  "router supports at most 64 shards");
  retry_until_ns_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(opt_.ports.size());
  for (std::size_t s = 0; s < opt_.ports.size(); ++s) {
    retry_until_ns_[s].store(0, std::memory_order_relaxed);
    clients_.push_back(std::make_unique<ShardClient>(
        ShardClient::Options{opt_.ports[s], opt_.max_reply}));
  }
  handshake();
}

void RouterCore::handshake() {
  const std::uint32_t n = shard_count();
  std::vector<std::vector<std::uint64_t>> sizes(n);
  std::uint64_t universe = 0;
  std::uint64_t total64 = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    std::string reply;
    const Hop h = exchange(s, "X Z", 0, reply, /*retry=*/true);
    REPRO_CHECK_MSG(h == Hop::kOk,
                    "router handshake: shard unreachable or errored");
    Cur c{reply};
    std::string_view t;
    std::uint64_t u = 0;
    std::uint64_t cnt = 0;
    REPRO_CHECK_MSG(c.tok(t) && t == "OK" && c.u64(u) && c.u64(cnt),
                    "router handshake: malformed X Z reply");
    REPRO_CHECK_MSG(s == 0 || u == universe,
                    "router handshake: shard universes differ");
    universe = u;
    sizes[s].reserve(cnt);
    std::uint64_t sup = 0;
    for (std::uint64_t i = 0; i < cnt; ++i) {
      REPRO_CHECK_MSG(c.u64(sup), "router handshake: malformed X Z reply");
      sizes[s].push_back(sup);
    }
    REPRO_CHECK_MSG(c.done(), "router handshake: malformed X Z reply");
    total64 += cnt;
  }
  REPRO_CHECK_MSG(total64 <= 0xffffffffull, "corpus too large");
  const std::uint32_t total = static_cast<std::uint32_t>(total64);

  const ShardMap map(ShardMap::Options{n, opt_.vnodes, opt_.ring_seed});
  ShardMap::Partition part = map.partition(total);
  for (std::uint32_t s = 0; s < n; ++s) {
    REPRO_CHECK_MSG(
        part.owned[s].size() == sizes[s].size(),
        "shard set count does not match the ShardMap partition — was the "
        "corpus split with the same --shards/--vnodes/--ring-seed?");
  }
  std::vector<std::uint64_t> supports(total);
  for (std::uint32_t s = 0; s < n; ++s) {
    for (std::size_t l = 0; l < part.owned[s].size(); ++l) {
      supports[part.owned[s][l]] = sizes[s][l];
    }
  }

  std::unique_lock lock(state_mu_);
  total_ = total;
  universe_ = universe;
  part_ = std::move(part);
  supports_ = std::move(supports);
}

RouterCore::Hop RouterCore::exchange(std::uint32_t s, const std::string& line,
                                     std::uint64_t deadline_ns,
                                     std::string& reply, bool retry) {
  if (deadline_ns != 0 && now_ns() >= deadline_ns) return Hop::kTimeout;
  ShardClient::Io io = clients_[s]->request(line, deadline_ns, reply);
  if (io == ShardClient::Io::kConnFail && retry) {
    retries_.fetch_add(1, std::memory_order_relaxed);
    io = clients_[s]->request(line, deadline_ns, reply);
  }
  if (io == ShardClient::Io::kTimeout) return Hop::kTimeout;
  if (io == ShardClient::Io::kConnFail) {
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    return Hop::kUnavailable;
  }
  if (reply.rfind("ERR", 0) == 0) {
    note_overload(s, reply);
    return Hop::kErrLine;
  }
  return Hop::kOk;
}

void RouterCore::note_overload(std::uint32_t s, const std::string& reply) {
  if (reply.rfind("ERR OVERLOAD", 0) != 0) return;
  overloads_seen_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t pos = reply.find("retry_ms=");
  if (pos == std::string::npos) return;
  std::uint64_t ms = 0;
  for (std::size_t i = pos + 9; i < reply.size() && reply[i] >= '0' &&
                                reply[i] <= '9';
       ++i) {
    ms = ms * 10 + static_cast<std::uint64_t>(reply[i] - '0');
  }
  if (ms == 0) return;
  const std::uint64_t until = now_ns() + ms * 1'000'000ull;
  std::uint64_t cur = retry_until_ns_[s].load(std::memory_order_relaxed);
  while (until > cur && !retry_until_ns_[s].compare_exchange_weak(
                            cur, until, std::memory_order_relaxed)) {
  }
}

bool RouterCore::gated(std::uint64_t mask, std::uint64_t& retry_ms) {
  const std::uint64_t now = now_ns();
  std::uint64_t worst = 0;
  for (std::uint32_t s = 0; mask != 0; ++s, mask >>= 1) {
    if ((mask & 1) == 0) continue;
    const std::uint64_t ru = retry_until_ns_[s].load(std::memory_order_relaxed);
    if (ru > now && ru - now > worst) worst = ru - now;
  }
  if (worst == 0) return false;
  retry_ms = (worst + 999'999) / 1'000'000;
  if (retry_ms == 0) retry_ms = 1;
  backpressure_rejections_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

RouterCore::Reply RouterCore::execute(const Query& q,
                                      std::uint64_t deadline_ns) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t touched = 0;
  Reply r = execute_impl(q, deadline_ns, touched);
  const int fan = std::popcount(touched);
  fanout_hist_[static_cast<std::uint32_t>(fan)].fetch_add(
      1, std::memory_order_relaxed);
  return r;
}

RouterCore::Reply RouterCore::forward_parsed(std::uint32_t s,
                                             const std::string& line,
                                             std::uint64_t deadline_ns,
                                             const Query& q) {
  direct_forwards_.fetch_add(1, std::memory_order_relaxed);
  const bool write =
      q.kind == QueryKind::kAdd || q.kind == QueryKind::kDelete;
  std::string reply;
  switch (exchange(s, line, deadline_ns, reply, /*retry=*/!write)) {
    case Hop::kOk: break;
    case Hop::kTimeout: return err_reply(kTimeoutErr);
    case Hop::kUnavailable: return err_reply(unavailable_line(s));
    case Hop::kErrLine: return err_reply(std::move(reply));
  }
  Result res;
  Cur c{reply};
  std::string_view t;
  bool ok = c.tok(t) && t == "OK";
  if (ok) {
    switch (q.kind) {
      case QueryKind::kRuleScore:
        ok = c.u64(res.value) && c.u64(res.aux) && c.done();
        break;
      case QueryKind::kTopK: {
        // Only hit in 1-shard topologies, where local id == global id.
        ok = c.u64(res.value) && res.value <= service::kMaxTopK;
        for (std::uint64_t i = 0; ok && i < res.value; ++i) {
          ok = c.tok(t) &&
               parse_entry(t, res.topk[i].id, res.topk[i].count);
        }
        ok = ok && c.done();
        res.topk_count = static_cast<std::uint32_t>(res.value);
        break;
      }
      default:
        ok = c.u64(res.value) && c.done();
        break;
    }
  }
  if (!ok) {
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    return err_reply(unavailable_line(s));
  }
  return ok_reply(res);
}

RouterCore::Hop RouterCore::semi_join_ids(std::span<const std::uint32_t> gids,
                                          std::uint64_t deadline_ns,
                                          std::vector<std::uint64_t>& list,
                                          std::string& err) {
  // Group operands by owning shard; visit groups in ascending min-support
  // order so the intermediate list shrinks as early as possible.
  struct Group {
    std::uint32_t shard = 0;
    std::uint64_t min_support = 0;
    std::vector<std::uint32_t> lids;
  };
  std::vector<Group> groups;
  for (const std::uint32_t gid : gids) {
    const std::uint32_t s = part_.shard_of_id[gid];
    Group* g = nullptr;
    for (Group& cand : groups) {
      if (cand.shard == s) {
        g = &cand;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back(Group{s, supports_[gid], {}});
      g = &groups.back();
    } else if (supports_[gid] < g->min_support) {
      g->min_support = supports_[gid];
    }
    g->lids.push_back(part_.local_of_id[gid]);
  }
  std::sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
    return a.min_support != b.min_support ? a.min_support < b.min_support
                                          : a.shard < b.shard;
  });

  bool first = true;
  for (const Group& g : groups) {
    std::string line;
    line.reserve(16 + 21 * (g.lids.size() + (first ? 0 : list.size())));
    line += first ? "X J " : "X I ";
    append_u64(line, g.lids.size());
    for (const std::uint32_t lid : g.lids) {
      line.push_back(' ');
      append_u64(line, lid);
    }
    if (!first) {
      line.push_back(' ');
      append_u64(line, list.size());
      for (const std::uint64_t e : list) {
        line.push_back(' ');
        append_u64(line, e);
      }
    }
    std::string reply;
    switch (exchange(g.shard, line, deadline_ns, reply, /*retry=*/true)) {
      case Hop::kOk: break;
      case Hop::kTimeout:
        err = kTimeoutErr;
        return Hop::kTimeout;
      case Hop::kUnavailable:
        err = unavailable_line(g.shard);
        return Hop::kUnavailable;
      case Hop::kErrLine:
        err = std::move(reply);
        return Hop::kErrLine;
    }
    if (!first) semi_join_forwards_.fetch_add(1, std::memory_order_relaxed);
    if (!parse_list(reply, list)) {
      unavailable_.fetch_add(1, std::memory_order_relaxed);
      err = unavailable_line(g.shard);
      return Hop::kUnavailable;
    }
    first = false;
    if (list.empty()) break;  // the intersection is already empty
  }
  return Hop::kOk;
}

RouterCore::Reply RouterCore::execute_impl(const Query& q,
                                           std::uint64_t deadline_ns,
                                           std::uint64_t& touched) {
  if (deadline_ns != 0 && now_ns() >= deadline_ns) {
    return err_reply(kTimeoutErr);
  }
  std::shared_lock lock(state_mu_);
  const auto bit = [](std::uint32_t s) { return 1ull << s; };
  const char op = op_of(q.kind);
  switch (q.kind) {
    case QueryKind::kIntersect:
    case QueryKind::kSupport: {
      if (q.a >= total_ || q.b >= total_) return err_reply(kRangeErr);
      const std::uint32_t sa = part_.shard_of_id[q.a];
      const std::uint32_t sb = part_.shard_of_id[q.b];
      touched = bit(sa) | bit(sb);
      std::uint64_t ms = 0;
      if (gated(touched, ms)) return err_reply(overload_line(ms));
      if (sa == sb) {
        std::string line(1, op);
        line.push_back(' ');
        append_u64(line, part_.local_of_id[q.a]);
        line.push_back(' ');
        append_u64(line, part_.local_of_id[q.b]);
        if (!append_deadline(line, deadline_ns)) return err_reply(kTimeoutErr);
        return forward_parsed(sa, line, deadline_ns, q);
      }
      // Cross-shard pair: fetch the smaller operand's row, intersect at
      // the other owner. S counts in the stored (raw sweep) domain, so its
      // hops use the X RJ / X RI raw forms.
      const bool raw = q.kind == QueryKind::kSupport;
      const std::uint32_t first =
          supports_[q.a] <= supports_[q.b] ? q.a : q.b;
      const std::uint32_t second = first == q.a ? q.b : q.a;
      const std::uint32_t s1 = part_.shard_of_id[first];
      const std::uint32_t s2 = part_.shard_of_id[second];
      std::string l1 = raw ? "X RJ " : "X J 1 ";
      append_u64(l1, part_.local_of_id[first]);
      std::string reply;
      switch (exchange(s1, l1, deadline_ns, reply, /*retry=*/true)) {
        case Hop::kOk: break;
        case Hop::kTimeout: return err_reply(kTimeoutErr);
        case Hop::kUnavailable: return err_reply(unavailable_line(s1));
        case Hop::kErrLine: return err_reply(std::move(reply));
      }
      std::vector<std::uint64_t> list;
      if (!parse_list(reply, list)) {
        unavailable_.fetch_add(1, std::memory_order_relaxed);
        return err_reply(unavailable_line(s1));
      }
      Result res;
      if (list.empty()) return ok_reply(res);
      std::string l2 = raw ? "X RI " : "X I 1 ";
      l2.reserve(16 + 21 * (list.size() + 1));
      append_u64(l2, part_.local_of_id[second]);
      l2.push_back(' ');
      append_u64(l2, list.size());
      for (const std::uint64_t e : list) {
        l2.push_back(' ');
        append_u64(l2, e);
      }
      switch (exchange(s2, l2, deadline_ns, reply, /*retry=*/true)) {
        case Hop::kOk: break;
        case Hop::kTimeout: return err_reply(kTimeoutErr);
        case Hop::kUnavailable: return err_reply(unavailable_line(s2));
        case Hop::kErrLine: return err_reply(std::move(reply));
      }
      semi_join_forwards_.fetch_add(1, std::memory_order_relaxed);
      bool ok;
      if (raw) {
        ok = parse_count(reply, res.value);
      } else {
        std::vector<std::uint64_t> out;
        ok = parse_list(reply, out);
        res.value = out.size();
      }
      if (!ok) {
        unavailable_.fetch_add(1, std::memory_order_relaxed);
        return err_reply(unavailable_line(s2));
      }
      return ok_reply(res);
    }

    case QueryKind::kTopK: {
      if (q.a >= total_ || q.k < 1 || q.k > service::kMaxTopK) {
        return err_reply(kRangeErr);
      }
      const std::uint32_t n = shard_count();
      touched = n >= 64 ? ~0ull : (1ull << n) - 1;  // ranks every set
      std::uint64_t ms = 0;
      if (gated(touched, ms)) return err_reply(overload_line(ms));
      const std::uint32_t sa = part_.shard_of_id[q.a];
      if (n == 1) {
        // Local ids are global ids; the shard's coalesced top-k path
        // already produces the canonical ranking.
        std::string line = "T ";
        append_u64(line, q.a);
        line.push_back(' ');
        append_u64(line, q.k);
        if (!append_deadline(line, deadline_ns)) return err_reply(kTimeoutErr);
        return forward_parsed(sa, line, deadline_ns, q);
      }
      scatter_topk_.fetch_add(1, std::memory_order_relaxed);
      // Hop 1: the probe set's effective membership from its owner.
      std::string l1 = "X J 1 ";
      append_u64(l1, part_.local_of_id[q.a]);
      std::string reply;
      switch (exchange(sa, l1, deadline_ns, reply, /*retry=*/true)) {
        case Hop::kOk: break;
        case Hop::kTimeout: return err_reply(kTimeoutErr);
        case Hop::kUnavailable: return err_reply(unavailable_line(sa));
        case Hop::kErrLine: return err_reply(std::move(reply));
      }
      std::vector<std::uint64_t> list;
      if (!parse_list(reply, list)) {
        unavailable_.fetch_add(1, std::memory_order_relaxed);
        return err_reply(unavailable_line(sa));
      }
      // Scatter: every shard ranks its local sets against the probe list
      // (k' = k prefetch — a shard can contribute at most k entries), the
      // probe set itself excluded on its owner. Global merge goes through
      // the same topk_insert the engine ranks with, over global ids, so
      // the merged order is the single-node order by construction.
      std::string scatter;
      scatter.reserve(24 + 21 * (list.size() + 1));
      scatter += "X T ";
      append_u64(scatter, q.k);
      scatter.push_back(' ');
      std::string suffix;
      suffix.reserve(21 * (list.size() + 1));
      append_u64(suffix, list.size());
      for (const std::uint64_t e : list) {
        suffix.push_back(' ');
        append_u64(suffix, e);
      }
      Result res;
      TopEntry best[service::kMaxTopK];
      std::uint32_t size = 0;
      for (std::uint32_t s = 0; s < n; ++s) {
        std::string line = scatter;
        append_u64(line, s == sa ? part_.local_of_id[q.a] : kNoExclude);
        line.push_back(' ');
        line += suffix;
        switch (exchange(s, line, deadline_ns, reply, /*retry=*/true)) {
          case Hop::kOk: break;
          case Hop::kTimeout: return err_reply(kTimeoutErr);
          case Hop::kUnavailable: return err_reply(unavailable_line(s));
          case Hop::kErrLine: return err_reply(std::move(reply));
        }
        Cur c{reply};
        std::string_view t;
        std::uint64_t cnt = 0;
        bool ok = c.tok(t) && t == "OK" && c.u64(cnt) &&
                  cnt <= service::kMaxTopK;
        for (std::uint64_t i = 0; ok && i < cnt; ++i) {
          std::uint32_t lid = 0;
          std::uint64_t v = 0;
          ok = c.tok(t) && parse_entry(t, lid, v) &&
               lid < part_.owned[s].size();
          if (ok) {
            size = service::topk_insert(best, size, q.k,
                                        part_.owned[s][lid], v);
          }
        }
        ok = ok && c.done();
        if (!ok) {
          unavailable_.fetch_add(1, std::memory_order_relaxed);
          return err_reply(unavailable_line(s));
        }
      }
      res.topk_count = size;
      res.value = size;
      std::copy_n(best, size, res.topk);
      return ok_reply(res);
    }

    case QueryKind::kKway:
    case QueryKind::kRuleScore: {
      for (std::uint32_t i = 0; i < q.nids; ++i) {
        if (q.ids[i] >= total_) return err_reply(kRangeErr);
      }
      std::uint32_t uniq[service::kMaxKwayIds];
      std::uint32_t nu = 0;
      for (std::uint32_t i = 0; i < q.nids; ++i) {
        bool seen = false;
        for (std::uint32_t j = 0; j < nu; ++j) {
          seen = seen || uniq[j] == q.ids[i];
        }
        if (!seen) uniq[nu++] = q.ids[i];
      }
      for (std::uint32_t i = 0; i < nu; ++i) {
        touched |= bit(part_.shard_of_id[uniq[i]]);
      }
      std::uint64_t ms = 0;
      if (gated(touched, ms)) return err_reply(overload_line(ms));
      if (std::popcount(touched) == 1) {
        // Every operand on one shard: forward in protocol order with local
        // ids — the shard's planner answers it like any native query.
        std::string line(1, op);
        line.push_back(' ');
        append_u64(line, q.nids);
        for (std::uint32_t i = 0; i < q.nids; ++i) {
          line.push_back(' ');
          append_u64(line, part_.local_of_id[q.ids[i]]);
        }
        if (!append_deadline(line, deadline_ns)) return err_reply(kTimeoutErr);
        return forward_parsed(part_.shard_of_id[uniq[0]], line, deadline_ns,
                              q);
      }
      semi_join_queries_.fetch_add(1, std::memory_order_relaxed);
      Result res;
      std::vector<std::uint64_t> list;
      std::string err;
      if (q.kind == QueryKind::kKway) {
        if (semi_join_ids({uniq, nu}, deadline_ns, list, err) != Hop::kOk) {
          return err_reply(std::move(err));
        }
        res.value = list.size();
        return ok_reply(res);
      }
      // Rule score: antecedent = ids[0..nids-2] (deduped), consequent =
      // ids[nids-1]. aux = |∩ antecedent|; one more forward intersects the
      // surviving list with the consequent unless it already appeared in
      // the antecedent (then joint == antecedent count).
      const std::uint32_t cons = q.ids[q.nids - 1];
      std::uint32_t ante[service::kMaxKwayIds];
      std::uint32_t na = 0;
      bool cons_in_ante = false;
      for (std::uint32_t i = 0; i + 1 < q.nids; ++i) {
        bool seen = false;
        for (std::uint32_t j = 0; j < na; ++j) {
          seen = seen || ante[j] == q.ids[i];
        }
        if (!seen) ante[na++] = q.ids[i];
        cons_in_ante = cons_in_ante || q.ids[i] == cons;
      }
      if (semi_join_ids({ante, na}, deadline_ns, list, err) != Hop::kOk) {
        return err_reply(std::move(err));
      }
      res.aux = list.size();
      if (cons_in_ante || list.empty()) {
        res.value = cons_in_ante ? res.aux : 0;
        return ok_reply(res);
      }
      std::string line = "X I 1 ";
      line.reserve(16 + 21 * (list.size() + 2));
      append_u64(line, part_.local_of_id[cons]);
      line.push_back(' ');
      append_u64(line, list.size());
      for (const std::uint64_t e : list) {
        line.push_back(' ');
        append_u64(line, e);
      }
      const std::uint32_t sc = part_.shard_of_id[cons];
      std::string reply;
      switch (exchange(sc, line, deadline_ns, reply, /*retry=*/true)) {
        case Hop::kOk: break;
        case Hop::kTimeout: return err_reply(kTimeoutErr);
        case Hop::kUnavailable: return err_reply(unavailable_line(sc));
        case Hop::kErrLine: return err_reply(std::move(reply));
      }
      semi_join_forwards_.fetch_add(1, std::memory_order_relaxed);
      if (!parse_list(reply, list)) {
        unavailable_.fetch_add(1, std::memory_order_relaxed);
        return err_reply(unavailable_line(sc));
      }
      res.value = list.size();
      return ok_reply(res);
    }

    case QueryKind::kAdd:
    case QueryKind::kDelete: {
      if (q.a >= total_) return err_reply(kRangeErr);
      const std::uint32_t s = part_.shard_of_id[q.a];
      touched = bit(s);
      std::uint64_t ms = 0;
      if (gated(touched, ms)) return err_reply(overload_line(ms));
      std::string line(1, op);
      line.push_back(' ');
      append_u64(line, part_.local_of_id[q.a]);
      for (std::uint32_t i = 0; i < q.nids; ++i) {
        line.push_back(' ');
        append_u64(line, q.ids[i]);  // elements, not set ids: no rewrite
      }
      // Supports_[q.a] drifts after a write; it only orders semi-join hops
      // (never results), and the post-RELOAD handshake refreshes it.
      return forward_parsed(s, line, /*deadline_ns=*/0, q);
    }

    case QueryKind::kFlush:
      break;
  }
  REPRO_CHECK_MSG(false, "FLUSH routes through RouterCore::flush()");
  return err_reply(kRangeErr);  // unreachable
}

std::string RouterCore::reload(const std::string& prefix) {
  std::uint64_t max_epoch = 0;
  for (std::uint32_t s = 0; s < shard_count(); ++s) {
    std::string line = "RELOAD";
    if (!prefix.empty()) {
      line.push_back(' ');
      line += prefix;
      line.push_back('.');
      append_u64(line, s);
      line += ".snap";
    }
    std::string reply;
    const Hop h = exchange(s, line, 0, reply, /*retry=*/true);
    if (h == Hop::kUnavailable || h == Hop::kTimeout) {
      std::string e = "ERR RELOAD shard=";
      append_u64(e, s);
      e += " unavailable";
      return e;
    }
    std::uint64_t epoch = 0;
    if (h == Hop::kErrLine || reply.rfind("RELOADED epoch=", 0) != 0 ||
        !service::proto::parse_u64(
            std::string_view(reply).substr(sizeof("RELOADED epoch=") - 1),
            epoch)) {
      // All-or-nothing reporting: the first failing shard's typed error
      // wins, tagged with which shard refused.
      std::string e = "ERR RELOAD shard=";
      append_u64(e, s);
      e.push_back(' ');
      e += h == Hop::kErrLine ? reply : "unexpected reply";
      return e;
    }
    if (epoch > max_epoch) max_epoch = epoch;
  }
  // Revalidate the partition against whatever the shards now serve — a
  // corpus swap that changes the set counts must fail loudly here, not
  // misroute quietly later.
  try {
    handshake();
  } catch (const CheckError&) {
    return "ERR RELOAD corpus does not match the router partition";
  }
  std::string out = "RELOADED epoch=";
  append_u64(out, max_epoch);
  return out;
}

std::string RouterCore::flush() {
  std::uint64_t max_epoch = 0;
  for (std::uint32_t s = 0; s < shard_count(); ++s) {
    std::string reply;
    const Hop h = exchange(s, "FLUSH", 0, reply, /*retry=*/true);
    if (h == Hop::kUnavailable || h == Hop::kTimeout) {
      return unavailable_line(s);
    }
    if (h == Hop::kErrLine) return reply;  // typed shard error, verbatim
    std::uint64_t epoch = 0;
    if (reply.rfind("FLUSHED epoch=", 0) != 0 ||
        !service::proto::parse_u64(
            std::string_view(reply).substr(sizeof("FLUSHED epoch=") - 1),
            epoch)) {
      return unavailable_line(s);
    }
    if (epoch > max_epoch) max_epoch = epoch;
  }
  std::string out = "FLUSHED epoch=";
  append_u64(out, max_epoch);
  return out;
}

std::string RouterCore::stats_line() {
  // Aggregate the shard gauges in shard 0's key order: counters sum;
  // epoch and max_batch take the max (a sum of epochs means nothing).
  std::vector<std::pair<std::string, std::uint64_t>> agg;
  for (std::uint32_t s = 0; s < shard_count(); ++s) {
    std::string reply;
    if (exchange(s, "STATS", 0, reply, /*retry=*/true) != Hop::kOk) {
      return unavailable_line(s);
    }
    Cur c{reply};
    std::string_view t;
    if (!c.tok(t) || t != "STATS") return unavailable_line(s);
    while (c.tok(t)) {
      const std::size_t eq = t.find('=');
      if (eq == std::string_view::npos) continue;
      const std::string key(t.substr(0, eq));
      std::uint64_t v = 0;
      if (!service::proto::parse_u64(t.substr(eq + 1), v)) continue;
      auto it = agg.begin();
      for (; it != agg.end() && it->first != key; ++it) {
      }
      if (it == agg.end()) {
        agg.emplace_back(key, v);
      } else if (key == "epoch" || key == "max_batch") {
        it->second = std::max(it->second, v);
      } else {
        it->second += v;
      }
    }
  }
  std::string out = "STATS shards=";
  append_u64(out, shard_count());
  for (const auto& [key, v] : agg) {
    out.push_back(' ');
    out += key;
    out.push_back('=');
    append_u64(out, v);
  }
  const auto emit = [&out](const char* key,
                           const std::atomic<std::uint64_t>& v) {
    out.push_back(' ');
    out += key;
    out.push_back('=');
    append_u64(out, v.load(std::memory_order_relaxed));
  };
  emit("router_queries", queries_);
  emit("router_direct", direct_forwards_);
  emit("router_scatter", scatter_topk_);
  emit("router_semijoin", semi_join_queries_);
  emit("router_semijoin_forwards", semi_join_forwards_);
  emit("router_backpressure", backpressure_rejections_);
  emit("router_overloads", overloads_seen_);
  emit("router_retries", retries_);
  emit("router_unavailable", unavailable_);
  std::uint64_t reconnects = 0;
  for (const auto& cl : clients_) reconnects += cl->reconnects();
  out += " router_reconnects=";
  append_u64(out, reconnects);
  for (std::uint32_t f = 1; f <= shard_count() && f <= kMaxShards; ++f) {
    out += " fanout_";
    append_u64(out, f);
    out.push_back('=');
    append_u64(out, fanout_hist_[f].load(std::memory_order_relaxed));
  }
  return out;
}

}  // namespace repro::router
