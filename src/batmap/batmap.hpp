// The sealed, compressed batmap: 3 interleaved hash tables of slot bytes
// packed 4-per-word, ready for branch-free intersection counting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "batmap/layout.hpp"

namespace repro::batmap {

class Batmap {
 public:
  Batmap() = default;

  /// Constructs from raw words; used by BatmapBuilder::seal().
  Batmap(std::uint32_t range, std::uint64_t stored_elements,
         std::vector<std::uint32_t> words, const LayoutParams& params);

  /// Hash range r (power of two) of this batmap.
  std::uint32_t range() const { return range_; }
  /// Number of slot bytes (3r).
  std::uint64_t slot_count() const { return LayoutParams::slots(range_); }
  /// Number of packed 32-bit words (3r/4).
  std::uint64_t word_count() const { return words_.size(); }
  /// Number of set elements successfully stored (excludes failed inserts).
  std::uint64_t stored_elements() const { return stored_elements_; }

  std::span<const std::uint32_t> words() const { return words_; }

  /// Slot byte at position p.
  std::uint8_t slot(std::uint64_t p) const {
    REPRO_DCHECK(p < slot_count());
    return static_cast<std::uint8_t>(words_[p >> 2] >> (8 * (p & 3)));
  }

  /// Memory held by the packed representation, in bytes.
  std::uint64_t memory_bytes() const { return words_.size() * 4; }

  /// Decodes the stored set back out of the compressed representation
  /// (each element appears in exactly 2 slots; returns the deduplicated,
  /// sorted element list). Primarily for tests/debugging — O(slots).
  std::vector<std::uint64_t> decode(const LayoutParams& params,
                                    const class BatmapContext& ctx) const;

  bool empty() const { return words_.empty(); }

 private:
  std::uint32_t range_ = 0;
  std::uint64_t stored_elements_ = 0;
  std::vector<std::uint32_t> words_;
};

/// Counts matching slots between two batmaps of the SAME universe: the value
/// equals |S_a ∩ S_b| when both were built without insertion failures.
/// The sweep is completely data-independent: word w of the larger map is
/// compared against word (w mod W_small) of the smaller.
std::uint64_t intersect_count(const Batmap& a, const Batmap& b);

/// Same sweep over an explicit word span (used by the SIMT kernel and the
/// CPU throughput bench). `big_words.size()` must be a multiple of
/// `small_words.size()`.
std::uint64_t intersect_count_words(std::span<const std::uint32_t> big_words,
                                    std::span<const std::uint32_t> small_words);

}  // namespace repro::batmap
