// Multiway set intersection with batmaps — the paper's §V future-work
// directions, both implemented:
//
// (1) GENERALIZED d-of-(d+1) BATMAPS (GeneralBatmap). Each element is stored
//     in d of d+1 tables (one "hole" per set/element). For any k ≤ d sets
//     all containing x, at most k tables are holes, so at least one of the
//     d+1 tables stores x in ALL k maps — a position-aligned witness. To
//     count each common element exactly once we extend the paper's
//     indicator-bit idea: every occurrence carries its set's HOLE INDEX for
//     that element; at a matched position in table t, the element is counted
//     iff every table T < t is a hole of one of the k sets (i.e. t is the
//     first witnessing table). This reduces to a data-independent slot-wise
//     test, and for d = 2, k = 2 it is equivalent to the paper's cyclic
//     last-occurrence bit.
//     Slots are 16-bit: [hole:4 | code:12], code = (π_t(x) >> s) + 1 with
//     s chosen so the code fits 12 bits; 0x0000 is the empty slot.
//
// (2) PAIRWISE-COUNTER MULTIWAY (multiway_count_via_counters). Using plain
//     2-of-3 batmaps: sweep the base map B₁ against each other map with the
//     paper's exactly-once pair rule, accumulating per-position counters;
//     element x (with occurrences at positions p, p' of B₁) lies in the
//     k-way intersection iff counter[p] + counter[p'] == k−1. This is the
//     paper's "count, for each item in S_{i1}, how many times it appears in
//     S_{i2}, S_{i3}, …, then sum the counts for the two occurrences".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "batmap/builder.hpp"
#include "batmap/context.hpp"
#include "hash/permutation.hpp"
#include "util/check.hpp"

namespace repro::batmap {

// ---------------------------------------------------------------------------
// (1) d-of-(d+1) generalized batmaps
// ---------------------------------------------------------------------------

/// Shared parameters for all GeneralBatmaps over one universe.
class MultiwayContext {
 public:
  /// `d`: copies per element (tables = d+1), 2 ≤ d ≤ 15.
  MultiwayContext(std::uint64_t universe, int d, std::uint64_t seed = 77);

  std::uint64_t universe() const { return m_; }
  int d() const { return d_; }
  int tables() const { return d_ + 1; }
  unsigned shift() const { return s_; }
  std::uint32_t r0() const { return r0_; }

  std::uint64_t permuted(int t, std::uint64_t x) const {
    return perms_[static_cast<std::size_t>(t)](x);
  }
  std::uint64_t unpermuted(int t, std::uint64_t v) const {
    return perms_[static_cast<std::size_t>(t)].inverse(v);
  }

  /// Interleaved position of permuted value v in table t for range r
  /// (generalizes LayoutParams::position to d+1 tables).
  std::uint64_t position(std::uint64_t v, int t, std::uint32_t r) const {
    const std::uint64_t slot = v & (r - 1);
    const std::uint64_t block = slot / r0_;
    const std::uint64_t low = v & (r0_ - 1);
    return static_cast<std::uint64_t>(tables()) * r0_ * block + low +
           static_cast<std::uint64_t>(t) * r0_;
  }

  int table_of(std::uint64_t pos) const {
    return static_cast<int>((pos / r0_) % static_cast<unsigned>(tables()));
  }

  std::uint32_t range_for_size(std::uint64_t size) const;

  /// 12-bit code, in [1, 4095].
  std::uint16_t code(std::uint64_t v) const {
    const std::uint64_t c = (v >> s_) + 1;
    REPRO_DCHECK(c >= 1 && c <= 4095);
    return static_cast<std::uint16_t>(c);
  }

 private:
  std::uint64_t m_;
  int d_;
  unsigned s_;
  std::uint32_t r0_;
  std::vector<hash::FeistelPermutation> perms_;
};

/// A sealed d-of-(d+1) batmap. Slots are 16-bit [hole:4 | code:12];
/// 0 = empty.
class GeneralBatmap {
 public:
  GeneralBatmap() = default;
  GeneralBatmap(std::uint32_t range, std::vector<std::uint16_t> slots,
                std::uint64_t stored)
      : range_(range), stored_(stored), slots_(std::move(slots)) {}

  std::uint32_t range() const { return range_; }
  std::uint64_t slot_count() const { return slots_.size(); }
  std::uint64_t stored_elements() const { return stored_; }
  std::uint16_t slot(std::uint64_t p) const { return slots_[p]; }
  std::span<const std::uint16_t> slots() const { return slots_; }
  std::uint64_t memory_bytes() const { return slots_.size() * 2; }
  bool empty() const { return slots_.empty(); }

  static std::uint16_t pack(int hole, std::uint16_t code) {
    return static_cast<std::uint16_t>((hole << 12) | code);
  }
  static int hole_of(std::uint16_t slot) { return slot >> 12; }
  static std::uint16_t code_of(std::uint16_t slot) {
    return slot & 0x0fffu;
  }

 private:
  std::uint32_t range_ = 0;
  std::uint64_t stored_ = 0;
  std::vector<std::uint16_t> slots_;
};

/// Builds a GeneralBatmap for `elements` (distinct, < universe). The builder
/// walks a (d+1)-table cuckoo loop; failures are returned like the 2-of-3
/// builder's. The per-element hole (the one unused table) is whichever table
/// ends up without a copy.
class GeneralBatmapBuilder {
 public:
  GeneralBatmapBuilder(const MultiwayContext& ctx, std::uint32_t range,
                       int max_loop = 256);

  bool insert(std::uint64_t x);
  const std::vector<std::uint64_t>& failures() const { return failures_; }
  GeneralBatmap seal() const;
  void check_invariants() const;

 private:
  static constexpr std::uint64_t kEmpty = ~0ull;
  std::uint64_t position(int t, std::uint64_t x) const {
    return ctx_->position(ctx_->permuted(t, x), t, range_);
  }
  std::uint64_t walk(std::uint64_t x, int start_table);
  void remove_all(std::uint64_t x);
  int copies_placed(std::uint64_t x) const;

  const MultiwayContext* ctx_;
  std::uint32_t range_;
  int max_loop_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> failures_;
};

GeneralBatmap build_general_batmap(const MultiwayContext& ctx,
                                   std::span<const std::uint64_t> elements,
                                   std::vector<std::uint64_t>* failed = nullptr);

/// Exact |S_1 ∩ … ∩ S_k| for k ≤ d maps of the SAME range built against one
/// MultiwayContext (all sets assumed failure-free; callers patch failures
/// like BatmapStore does). Data-independent sweep: a position counts iff all
/// k codes agree (non-empty) and no table earlier than this one witnesses —
/// evaluated from the k stored hole indices.
std::uint64_t multiway_intersect_count(
    const MultiwayContext& ctx,
    std::span<const GeneralBatmap* const> maps);

// ---------------------------------------------------------------------------
// (2) Pairwise-counter multiway on standard 2-of-3 batmaps
// ---------------------------------------------------------------------------

/// Materializing galloping sorted-list intersection: writes the elements
/// common to `a` and `b` into `out` (capacity >= min(|a|, |b|)) and returns
/// how many were written. The shorter list drives; each probe into the longer
/// list is an exponential gallop + binary search, so cost is
/// O(min·log(max/min)) — the planner's list-step primitive. `out` may alias
/// either input's data (the write index never passes the read index), which
/// is what lets the k-way reduction run in one scratch buffer.
std::size_t gallop_intersect(std::span<const std::uint64_t> a,
                             std::span<const std::uint64_t> b,
                             std::uint64_t* out);

/// One aligned pair sweep of `other_words` against `base_words` (both packed
/// 4-slots-per-u32 batmap words), crediting counters[pb] once per counted
/// match under the paper's exactly-once pair rule. `counters` has one entry
/// per BASE slot. Widths are 3·2^j so the smaller slot count always divides
/// the larger; the wrap is done by block decomposition — no per-iteration
/// division.
void accumulate_pair_counters(std::span<const std::uint32_t> base_words,
                              std::span<const std::uint32_t> other_words,
                              std::span<std::uint32_t> counters);

/// Decode pass over sorted `elems` (all stored twice in the base map, which
/// must be failure-free): counts the elements whose two occurrence counters
/// sum to exactly `needed`.
std::uint64_t decode_counter_matches(const BatmapContext& ctx,
                                     std::span<const std::uint32_t> base_words,
                                     std::uint32_t base_range,
                                     std::span<const std::uint64_t> elems,
                                     std::span<const std::uint32_t> counters,
                                     std::uint64_t needed);

/// Exact |S_1 ∩ … ∩ S_k| using the 2-of-3 maps: per-position counters on the
/// base map accumulated over k−1 aligned pair sweeps, then a decode pass sums
/// each element's two occurrence counters and tests == k−1.
/// `base_elements` is S_1 (sorted); all maps share `ctx` and must be built
/// without failures (REPRO_CHECK'd via stored_elements).
std::uint64_t multiway_count_via_counters(
    const BatmapContext& ctx, const Batmap& base,
    std::span<const std::uint64_t> base_elements,
    std::span<const Batmap* const> others);

}  // namespace repro::batmap
