// Geometry of the compressed batmap layout (paper §III-A).
//
// A batmap for a set S ⊆ [0, m) consists of 3 logical hash tables of range r
// (a power of two), interleaved in blocks of r₀ slots each:
//
//   [t1: slots 0..r₀)   [t2: 0..r₀)  [t3: 0..r₀)  [t1: r₀..2r₀)  [t2: ...] ...
//
// where r₀ is the *global* minimum range shared by all batmaps of a universe.
// Slot position of element x in table t:
//
//   pos = 3r₀·⌊(π_t(x) mod r)/r₀⌋ + (π_t(x) mod r₀) + t·r₀ ,  t ∈ {0,1,2}
//
// The key consequence (Lemma, tested in layout_test): for two batmaps with
// ranges r_i ≤ r_j, the position of x in the smaller is the position in the
// larger wrapped cyclically:  pos_i = pos_j mod 3r_i.  Hence intersection is
// a data-independent sweep comparing word w of B_j with word (w mod W_i) of
// B_i.
//
// Each slot stores one byte: indicator bit (MSB) and a 7-bit code
// (π_t(x) >> s) + 1, with 0x00 reserved for the empty slot ⊥. Position fixes
// π_t(x) mod r (and 2^s divides r), the code fixes π_t(x) >> s, so
// byte+position reconstruct π_t(x) exactly and π_t is a bijection — no false
// matches are possible. Validity requires ((m-1) >> s) + 1 ≤ 127 and
// r ≥ 2^s; the smallest admissible s therefore forces r₀ ≥ 2^s, which is the
// space floor the paper observes for very sparse sets (Fig 8).
#pragma once

#include <cstdint>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace repro::batmap {

/// Slot byte value of the empty slot ⊥.
inline constexpr std::uint8_t kNullSlot = 0x00;

/// Per-universe layout parameters shared by every batmap built against the
/// same universe [0, m).
struct LayoutParams {
  std::uint64_t m = 1;   ///< universe size; elements are 0..m-1
  unsigned s = 0;        ///< code shift: slot code = (π_t(x) >> s) + 1
  std::uint32_t r0 = 4;  ///< global minimum hash range (power of two, ≥ 4)

  /// Derives (s, r0) from the universe size. `r0_min` lets callers force a
  /// larger minimum range (must be a power of two ≥ 4).
  static LayoutParams for_universe(std::uint64_t m, std::uint32_t r0_min = 4);

  /// Range for a set of `size` elements: ≈ 2·2^⌈log₂ size⌉ clamped below by
  /// r0 (paper's sizing, satisfying both r ≥ 2·size and r ≥ 2^s).
  std::uint32_t range_for_size(std::uint64_t size) const;

  /// Slots (== bytes) in a batmap of range r.
  static std::uint64_t slots(std::uint32_t r) { return 3ull * r; }
  /// 32-bit words in a batmap of range r.
  static std::uint64_t words(std::uint32_t r) { return 3ull * r / 4; }
  /// Bytes of the builder's uncompressed slot table (one uint64 per slot)
  /// for range r — the arena budget of one in-flight construction.
  static std::uint64_t slot_table_bytes(std::uint32_t r) {
    return slots(r) * sizeof(std::uint64_t);
  }

  /// Slot position of permuted value v = π_t(x) in table t ∈ {0,1,2} for
  /// range r.
  std::uint64_t position(std::uint64_t v, int t, std::uint32_t r) const {
    REPRO_DCHECK(t >= 0 && t < 3);
    REPRO_DCHECK(bits::is_pow2(r) && r >= r0);
    const std::uint64_t slot = v & (r - 1);          // π_t(x) mod r
    const std::uint64_t block = slot / r0;           // ⌊slot / r₀⌋
    const std::uint64_t low = v & (r0 - 1);          // π_t(x) mod r₀
    return 3ull * r0 * block + low + static_cast<std::uint64_t>(t) * r0;
  }

  /// 7-bit slot code for permuted value v (1..127).
  std::uint8_t code(std::uint64_t v) const {
    const std::uint64_t c = (v >> s) + 1;
    REPRO_DCHECK(c >= 1 && c <= 127);
    return static_cast<std::uint8_t>(c);
  }

  /// Reconstructs π_t(x) from a slot position and its 7-bit code
  /// (inverse of position()+code(); used by tests and the decoder).
  std::uint64_t reconstruct(std::uint64_t pos, std::uint8_t code7,
                            std::uint32_t r) const;

  /// Table index encoded in a position.
  int table_of(std::uint64_t pos) const {
    return static_cast<int>((pos / r0) % 3);
  }

  bool valid() const {
    return m >= 1 && bits::is_pow2(r0) && r0 >= 4 &&
           ((m - 1) >> s) + 1 <= 127 && (s == 0 || (1ull << s) <= r0);
  }
};

}  // namespace repro::batmap
