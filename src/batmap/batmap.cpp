#include "batmap/batmap.hpp"

#include <algorithm>

#include "batmap/context.hpp"
#include "batmap/simd.hpp"

namespace repro::batmap {

Batmap::Batmap(std::uint32_t range, std::uint64_t stored_elements,
               std::vector<std::uint32_t> words, const LayoutParams& params)
    : range_(range), stored_elements_(stored_elements), words_(std::move(words)) {
  REPRO_CHECK(bits::is_pow2(range) && range >= params.r0);
  REPRO_CHECK(words_.size() == LayoutParams::words(range));
}

std::vector<std::uint64_t> Batmap::decode(const LayoutParams& params,
                                          const BatmapContext& ctx) const {
  std::vector<std::uint64_t> out;
  out.reserve(stored_elements_);
  for (std::uint64_t p = 0; p < slot_count(); ++p) {
    const std::uint8_t byte = slot(p);
    if (byte == kNullSlot) continue;
    const int t = params.table_of(p);
    const std::uint64_t v = params.reconstruct(p, byte & 0x7f, range_);
    if (v >= params.m) continue;  // cannot happen for well-formed maps
    out.push_back(ctx.unpermuted(t, v));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::uint64_t intersect_count_words(std::span<const std::uint32_t> big_words,
                                    std::span<const std::uint32_t> small_words) {
  REPRO_CHECK(!small_words.empty());
  REPRO_CHECK(big_words.size() % small_words.size() == 0);
  // The small map tiles the big one cyclically; the dispatched kernel
  // (scalar SWAR / SSE2 / AVX2 / AVX-512, see batmap/simd.hpp) sweeps each
  // tile without a modulo in the inner loop.
  return simd::match_count_cyclic(big_words.data(), big_words.size(),
                                  small_words.data(), small_words.size());
}

std::uint64_t intersect_count(const Batmap& a, const Batmap& b) {
  const Batmap& big = a.word_count() >= b.word_count() ? a : b;
  const Batmap& small = a.word_count() >= b.word_count() ? b : a;
  REPRO_CHECK_MSG(!big.empty() && !small.empty(),
                  "intersect on default-constructed batmap");
  return intersect_count_words(big.words(), small.words());
}

}  // namespace repro::batmap
