#include "batmap/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <vector>

#include "batmap/swar.hpp"
#include "util/bits.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define REPRO_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define REPRO_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace repro::batmap::simd {

namespace {

// ---- scalar (portable fallback) --------------------------------------------

std::uint64_t match_scalar(const std::uint32_t* a, const std::uint32_t* b,
                           std::size_t n) {
  std::uint64_t count = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    std::uint64_t x, y;
    std::memcpy(&x, a + i, 8);
    std::memcpy(&y, b + i, 8);
    count += swar_match_count64(x, y);
  }
  if (i < n) count += swar_match_count(a[i], b[i]);
  return count;
}

void strip_scalar(const std::uint32_t* row, std::size_t n,
                  const std::uint32_t* const cols[kStripCols],
                  std::uint64_t counts[kStripCols]) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    std::uint64_t r;
    std::memcpy(&r, row + i, 8);
    for (std::size_t j = 0; j < kStripCols; ++j) {
      std::uint64_t c;
      std::memcpy(&c, cols[j] + i, 8);
      counts[j] += swar_match_count64(r, c);
    }
  }
  if (i < n) {
    for (std::size_t j = 0; j < kStripCols; ++j) {
      counts[j] += swar_match_count(row[i], cols[j][i]);
    }
  }
}

#if REPRO_SIMD_X86

// ---- SSE2 (x86-64 baseline) -------------------------------------------------

/// MSB of each byte set iff the slot bytes of x and y match.
inline __m128i match_mask128(__m128i x, __m128i y, __m128i low7) {
  const __m128i eq =
      _mm_cmpeq_epi8(_mm_and_si128(x, low7), _mm_and_si128(y, low7));
  return _mm_and_si128(eq, _mm_or_si128(x, y));
}

std::uint64_t match_sse2(const std::uint32_t* a, const std::uint32_t* b,
                         std::size_t n) {
  const __m128i low7 = _mm_set1_epi8(0x7f);
  std::uint64_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i m0 = match_mask128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)), low7);
    const __m128i m1 = match_mask128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i + 4)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i + 4)), low7);
    const auto bits0 = static_cast<std::uint32_t>(_mm_movemask_epi8(m0));
    const auto bits1 = static_cast<std::uint32_t>(_mm_movemask_epi8(m1));
    count += bits::popcount(bits0 | (bits1 << 16));
  }
  for (; i + 4 <= n; i += 4) {
    const __m128i m = match_mask128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)), low7);
    count += bits::popcount(static_cast<std::uint32_t>(_mm_movemask_epi8(m)));
  }
  return count + match_scalar(a + i, b + i, n - i);
}

void strip_sse2(const std::uint32_t* row, std::size_t n,
                const std::uint32_t* const cols[kStripCols],
                std::uint64_t counts[kStripCols]) {
  const __m128i low7 = _mm_set1_epi8(0x7f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i r =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + i));
    const __m128i r7 = _mm_and_si128(r, low7);
    for (std::size_t j = 0; j < kStripCols; ++j) {
      const __m128i c =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols[j] + i));
      const __m128i eq = _mm_cmpeq_epi8(r7, _mm_and_si128(c, low7));
      const __m128i m = _mm_and_si128(eq, _mm_or_si128(r, c));
      counts[j] +=
          bits::popcount(static_cast<std::uint32_t>(_mm_movemask_epi8(m)));
    }
  }
  if (i < n) {
    const std::uint32_t* tails[kStripCols] = {cols[0] + i, cols[1] + i,
                                              cols[2] + i, cols[3] + i};
    strip_scalar(row + i, n - i, tails, counts);
  }
}

// ---- AVX2 -------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i match_mask256(__m256i x,
                                                             __m256i y,
                                                             __m256i low7) {
  const __m256i eq =
      _mm256_cmpeq_epi8(_mm256_and_si256(x, low7), _mm256_and_si256(y, low7));
  return _mm256_and_si256(eq, _mm256_or_si256(x, y));
}

__attribute__((target("avx2"))) std::uint64_t match_avx2(
    const std::uint32_t* a, const std::uint32_t* b, std::size_t n) {
  const __m256i low7 = _mm256_set1_epi8(0x7f);
  std::uint64_t count = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i m0 = match_mask256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)), low7);
    const __m256i m1 = match_mask256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 8)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 8)), low7);
    const auto bits0 = static_cast<std::uint32_t>(_mm256_movemask_epi8(m0));
    const auto bits1 = static_cast<std::uint32_t>(_mm256_movemask_epi8(m1));
    count += bits::popcount64(bits0 |
                              (static_cast<std::uint64_t>(bits1) << 32));
  }
  for (; i + 8 <= n; i += 8) {
    const __m256i m = match_mask256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)), low7);
    count +=
        bits::popcount(static_cast<std::uint32_t>(_mm256_movemask_epi8(m)));
  }
  return count + match_sse2(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void strip_avx2(
    const std::uint32_t* row, std::size_t n,
    const std::uint32_t* const cols[kStripCols],
    std::uint64_t counts[kStripCols]) {
  const __m256i low7 = _mm256_set1_epi8(0x7f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    const __m256i r7 = _mm256_and_si256(r, low7);
    for (std::size_t j = 0; j < kStripCols; ++j) {
      const __m256i c =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols[j] + i));
      const __m256i eq = _mm256_cmpeq_epi8(r7, _mm256_and_si256(c, low7));
      const __m256i m = _mm256_and_si256(eq, _mm256_or_si256(r, c));
      counts[j] +=
          bits::popcount(static_cast<std::uint32_t>(_mm256_movemask_epi8(m)));
    }
  }
  if (i < n) {
    const std::uint32_t* tails[kStripCols] = {cols[0] + i, cols[1] + i,
                                              cols[2] + i, cols[3] + i};
    strip_sse2(row + i, n - i, tails, counts);
  }
}

// ---- AVX-512BW --------------------------------------------------------------

__attribute__((target("avx512f,avx512bw"))) std::uint64_t match_avx512(
    const std::uint32_t* a, const std::uint32_t* b, std::size_t n) {
  const __m512i low7 = _mm512_set1_epi8(0x7f);
  std::uint64_t count = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i x = _mm512_loadu_si512(a + i);
    const __m512i y = _mm512_loadu_si512(b + i);
    const __mmask64 eq = _mm512_cmpeq_epi8_mask(_mm512_and_si512(x, low7),
                                                _mm512_and_si512(y, low7));
    const __mmask64 ind = _mm512_movepi8_mask(_mm512_or_si512(x, y));
    count += bits::popcount64(eq & ind);
  }
  return count + match_sse2(a + i, b + i, n - i);
}

__attribute__((target("avx512f,avx512bw"))) void strip_avx512(
    const std::uint32_t* row, std::size_t n,
    const std::uint32_t* const cols[kStripCols],
    std::uint64_t counts[kStripCols]) {
  const __m512i low7 = _mm512_set1_epi8(0x7f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i r = _mm512_loadu_si512(row + i);
    const __m512i r7 = _mm512_and_si512(r, low7);
    for (std::size_t j = 0; j < kStripCols; ++j) {
      const __m512i c = _mm512_loadu_si512(cols[j] + i);
      const __mmask64 eq =
          _mm512_cmpeq_epi8_mask(r7, _mm512_and_si512(c, low7));
      const __mmask64 ind = _mm512_movepi8_mask(_mm512_or_si512(r, c));
      counts[j] += bits::popcount64(eq & ind);
    }
  }
  if (i < n) {
    const std::uint32_t* tails[kStripCols] = {cols[0] + i, cols[1] + i,
                                              cols[2] + i, cols[3] + i};
    strip_sse2(row + i, n - i, tails, counts);
  }
}

#endif  // REPRO_SIMD_X86

#if REPRO_SIMD_NEON

std::uint64_t match_neon(const std::uint32_t* a, const std::uint32_t* b,
                         std::size_t n) {
  const uint8x16_t low7 = vdupq_n_u8(0x7f);
  std::uint64_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint8x16_t x = vld1q_u8(reinterpret_cast<const std::uint8_t*>(a + i));
    const uint8x16_t y = vld1q_u8(reinterpret_cast<const std::uint8_t*>(b + i));
    const uint8x16_t eq = vceqq_u8(vandq_u8(x, low7), vandq_u8(y, low7));
    const uint8x16_t m = vandq_u8(eq, vorrq_u8(x, y));
    count += vaddvq_u8(vshrq_n_u8(m, 7));
  }
  return count + match_scalar(a + i, b + i, n - i);
}

void strip_neon(const std::uint32_t* row, std::size_t n,
                const std::uint32_t* const cols[kStripCols],
                std::uint64_t counts[kStripCols]) {
  const uint8x16_t low7 = vdupq_n_u8(0x7f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint8x16_t r =
        vld1q_u8(reinterpret_cast<const std::uint8_t*>(row + i));
    const uint8x16_t r7 = vandq_u8(r, low7);
    for (std::size_t j = 0; j < kStripCols; ++j) {
      const uint8x16_t c =
          vld1q_u8(reinterpret_cast<const std::uint8_t*>(cols[j] + i));
      const uint8x16_t eq = vceqq_u8(r7, vandq_u8(c, low7));
      const uint8x16_t m = vandq_u8(eq, vorrq_u8(r, c));
      counts[j] += vaddvq_u8(vshrq_n_u8(m, 7));
    }
  }
  if (i < n) {
    const std::uint32_t* tails[kStripCols] = {cols[0] + i, cols[1] + i,
                                              cols[2] + i, cols[3] + i};
    strip_scalar(row + i, n - i, tails, counts);
  }
}

#endif  // REPRO_SIMD_NEON

// ---- dispatch ---------------------------------------------------------------

using MatchFn = std::uint64_t (*)(const std::uint32_t*, const std::uint32_t*,
                                  std::size_t);
using StripFn = void (*)(const std::uint32_t*, std::size_t,
                         const std::uint32_t* const[kStripCols],
                         std::uint64_t[kStripCols]);

struct Kernels {
  MatchFn match;
  StripFn strip;
};

bool tier_supported(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return true;
#if REPRO_SIMD_X86
    case Tier::kSse2:
      return true;
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2");
    case Tier::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw");
#endif
#if REPRO_SIMD_NEON
    case Tier::kNeon:
      return true;
#endif
    default:
      return false;
  }
}

Kernels kernels_for(Tier t) {
  switch (t) {
#if REPRO_SIMD_X86
    case Tier::kSse2:
      return {match_sse2, strip_sse2};
    case Tier::kAvx2:
      return {match_avx2, strip_avx2};
    case Tier::kAvx512:
      return {match_avx512, strip_avx512};
#endif
#if REPRO_SIMD_NEON
    case Tier::kNeon:
      return {match_neon, strip_neon};
#endif
    default:
      return {match_scalar, strip_scalar};
  }
}

/// -1: no override; otherwise the forced tier.
std::atomic<int> g_forced{-1};

bool parse_tier(std::string_view s, Tier* out) {
  if (s == "scalar" || s == "swar") return *out = Tier::kScalar, true;
  if (s == "sse2") return *out = Tier::kSse2, true;
  if (s == "avx2") return *out = Tier::kAvx2, true;
  if (s == "avx512") return *out = Tier::kAvx512, true;
  if (s == "neon") return *out = Tier::kNeon, true;
  return false;
}

Tier env_or_best() {
  static const Tier chosen = [] {
    const Tier best = best_tier();
    if (const char* e = std::getenv("REPRO_KERNEL")) {
      Tier t;
      if (!parse_tier(e, &t)) {
        std::fprintf(stderr,
                     "REPRO_KERNEL=%s not recognized "
                     "(want scalar|sse2|avx2|avx512|neon); using %s\n",
                     e, tier_name(best));
      } else if (!tier_supported(t)) {
        std::fprintf(stderr,
                     "REPRO_KERNEL=%s not supported on this CPU/build; "
                     "using %s\n",
                     e, tier_name(best));
      } else {
        return t;
      }
    }
    return best;
  }();
  return chosen;
}

}  // namespace

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
    case Tier::kNeon:
      return "neon";
  }
  return "unknown";
}

std::span<const Tier> supported_tiers() {
  static const std::vector<Tier> tiers = [] {
    std::vector<Tier> v;
    for (const Tier t : {Tier::kScalar, Tier::kSse2, Tier::kAvx2,
                         Tier::kAvx512, Tier::kNeon}) {
      if (tier_supported(t)) v.push_back(t);
    }
    return v;
  }();
  return tiers;
}

Tier best_tier() {
#if REPRO_SIMD_X86
  if (tier_supported(Tier::kAvx512)) return Tier::kAvx512;
  if (tier_supported(Tier::kAvx2)) return Tier::kAvx2;
  return Tier::kSse2;
#elif REPRO_SIMD_NEON
  return Tier::kNeon;
#else
  return Tier::kScalar;
#endif
}

Tier active_tier() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Tier>(forced);
  return env_or_best();
}

Tier force_tier(Tier t) {
  if (tier_supported(t)) {
    g_forced.store(static_cast<int>(t), std::memory_order_relaxed);
  }
  return active_tier();
}

void clear_forced_tier() { g_forced.store(-1, std::memory_order_relaxed); }

std::uint64_t match_count_tier(Tier t, const std::uint32_t* a,
                               const std::uint32_t* b, std::size_t n) {
  if (!tier_supported(t)) t = Tier::kScalar;
  return kernels_for(t).match(a, b, n);
}

std::uint64_t match_count(const std::uint32_t* a, const std::uint32_t* b,
                          std::size_t n) {
  return kernels_for(active_tier()).match(a, b, n);
}

std::uint64_t match_count_cyclic(const std::uint32_t* big, std::size_t wb,
                                 const std::uint32_t* small, std::size_t ws) {
  const MatchFn match = kernels_for(active_tier()).match;
  std::uint64_t count = 0;
  for (std::size_t base = 0; base < wb; base += ws) {
    count += match(big + base, small, ws);
  }
  return count;
}

void match_count_strip(const std::uint32_t* row, std::size_t n,
                       const std::uint32_t* const cols[kStripCols],
                       std::uint64_t counts[kStripCols]) {
  kernels_for(active_tier()).strip(row, n, cols, counts);
}

}  // namespace repro::batmap::simd
