// Uncompressed batmap used as a correctness oracle: slots store the original
// element values (64-bit) plus the indicator bit, and intersection counting
// compares full values. It shares the exact slot geometry with the
// compressed Batmap, so it validates the layout and indicator-bit logic
// independently of the 7-bit compression.
#pragma once

#include <cstdint>
#include <vector>

#include "batmap/layout.hpp"

namespace repro::batmap {

class ReferenceBatmap {
 public:
  static constexpr std::uint64_t kEmpty = ~0ull;

  ReferenceBatmap() = default;
  ReferenceBatmap(std::uint32_t range, std::vector<std::uint64_t> values,
                  std::vector<std::uint8_t> last_bits);

  std::uint32_t range() const { return range_; }
  std::uint64_t slot_count() const { return values_.size(); }

  std::uint64_t value(std::uint64_t p) const { return values_[p]; }
  bool last_bit(std::uint64_t p) const { return last_bits_[p] != 0; }

 private:
  std::uint32_t range_ = 0;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint8_t> last_bits_;
};

/// Exact |S_a ∩ S_b| over the stored elements — the "A equal and (b_a ∨ b_b)"
/// counting rule evaluated on uncompressed values.
std::uint64_t intersect_count_reference(const ReferenceBatmap& a,
                                        const ReferenceBatmap& b);

}  // namespace repro::batmap
