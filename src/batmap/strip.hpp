// Strip slicing over width-sorted batmap collections.
//
// A "strip" is a run of consecutive (sorted) batmaps that one row batmap can
// be intersected against in a single register- or shared-memory-blocked
// pass: all strip members share one width wc that the row width wr tiles
// (wc >= wr and wr | wc — layout ranges are powers of two scaled by 3, so
// equal-or-wider always divides, but the rule checks it rather than assume).
//
// Both sweep backends decide strip eligibility through these helpers so the
// native register-blocked kernel (batmap/simd.hpp) and the SIMT device strip
// kernel (core/strip_kernel.hpp) agree on the fallback rules by
// construction: the device tile predicate is the per-row rule applied to a
// whole tile's column block (see strip_tile_compatible).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace repro::batmap {

/// Width shared by columns [col, col + cols) of `widths`, or 0 if they are
/// not all equal. (0 is never a real batmap width.)
std::uint32_t uniform_width(std::span<const std::uint32_t> widths,
                            std::size_t col, std::size_t cols);

/// True iff columns [col, col + cols) form one strip for a row of width
/// `wr`: uniform column width wc with wc >= wr and wc % wr == 0.
bool strip_compatible(std::span<const std::uint32_t> widths, std::uint32_t wr,
                      std::size_t col, std::size_t cols);

/// The device tile predicate: every row in [row_begin, row_end) can strip
/// the whole column block [col_begin, col_end). Equivalent to
/// strip_compatible(widths, widths[r], col_begin, col_end - col_begin) for
/// every r (asserted in tile_kernel_test), but checks column uniformity
/// once instead of once per row.
bool strip_tile_compatible(std::span<const std::uint32_t> widths,
                           std::size_t row_begin, std::size_t row_end,
                           std::size_t col_begin, std::size_t col_end);

/// A maximal run of equal-width batmaps in a width array.
struct WidthRun {
  std::size_t begin = 0;        ///< first index of the run
  std::size_t end = 0;          ///< one past the last index
  std::uint32_t width = 0;      ///< shared word count
  std::size_t size() const { return end - begin; }
};

/// Decomposes `widths` into its maximal equal-width runs (width-sorted
/// collections yield one run per distinct width). Used by diagnostics and
/// tests to predict which tiles take the strip path.
std::vector<WidthRun> width_runs(std::span<const std::uint32_t> widths);

}  // namespace repro::batmap
