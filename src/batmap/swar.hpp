// Branch-free SWAR comparison of batmap words (paper §III-A).
//
// A 32-bit word packs 4 slot bytes, each `b:1 | code:7`. For two words x, y:
//
//   p  = ((x ^ y) | 0x80808080) - 0x01010101
//
// leaves a 0 in each byte's MSB iff the 7 code bits of that byte agree
// (the OR saturates the MSB so the per-lane subtraction never borrows
// across lanes), and
//
//   p' = ~p & ((x | y) & 0x80808080)
//
// has the MSB set iff codes agree AND at least one indicator bit is set —
// the paper's "count only the last occurrence" rule. The number of matching
// slots is then the popcount of p' (the paper accumulates the same value
// with four shift-adds; both forms are provided and tested equal).
#pragma once

#include <cstdint>

#include "util/bits.hpp"

namespace repro::batmap {

inline constexpr std::uint32_t kMsbMask = 0x80808080u;
inline constexpr std::uint32_t kLsbMask = 0x01010101u;

/// MSB-per-byte mask of slots that match between words x and y.
constexpr std::uint32_t swar_match_bits(std::uint32_t x, std::uint32_t y) {
  const std::uint32_t p = ((x ^ y) | kMsbMask) - kLsbMask;
  return ~p & ((x | y) & kMsbMask);
}

/// Number of matching slots (0..4) between words x and y.
constexpr unsigned swar_match_count(std::uint32_t x, std::uint32_t y) {
  return bits::popcount(swar_match_bits(x, y));
}

/// The paper's literal accumulation formula:
/// ((p'≫7)+(p'≫15)+(p'≫23)+(p'≫31)) ∧ 7. Equals swar_match_count().
constexpr unsigned swar_match_count_paper(std::uint32_t x, std::uint32_t y) {
  const std::uint32_t pp = swar_match_bits(x, y);
  return ((pp >> 7) + (pp >> 15) + (pp >> 23) + (pp >> 31)) & 7u;
}

/// 64-bit variant used by the wide CPU path: processes 8 slots at once.
constexpr std::uint64_t swar_match_bits64(std::uint64_t x, std::uint64_t y) {
  constexpr std::uint64_t msb = 0x8080808080808080ull;
  constexpr std::uint64_t lsb = 0x0101010101010101ull;
  const std::uint64_t p = ((x ^ y) | msb) - lsb;
  return ~p & ((x | y) & msb);
}

constexpr unsigned swar_match_count64(std::uint64_t x, std::uint64_t y) {
  return bits::popcount64(swar_match_bits64(x, y));
}

}  // namespace repro::batmap
