// BatmapBuilder: places each element in 2 of its 3 hash positions using the
// paper's generalization of cuckoo hashing (§II-A), then seals the table
// into the compressed byte representation.
//
// Failure semantics follow §III-C: if an insertion walk exceeds MaxLoop, the
// element being inserted is removed entirely, recorded in failures(), and the
// nestless victim returned by the walk is re-inserted (cascading failures are
// bounded and also recorded). A sealed batmap therefore represents exactly
// S \ failures(), and callers patch the difference (see core::PairMiner).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "batmap/batmap.hpp"
#include "batmap/context.hpp"
#include "batmap/reference.hpp"
#include "util/arena.hpp"

namespace repro::batmap {

class BatmapBuilder {
 public:
  struct Options {
    /// Maximum number of 3-swap rounds per insertion walk before declaring
    /// the insertion failed (the paper's MaxLoop).
    int max_loop = 128;
    /// Maximum cascading re-insertions processed after a failure.
    int max_cascade = 16;
  };

  struct Stats {
    std::uint64_t inserted = 0;      ///< elements fully placed
    std::uint64_t failed = 0;        ///< elements recorded as failures
    std::uint64_t swaps = 0;         ///< total element moves across all walks
    std::uint64_t walks = 0;         ///< insertion walks started
  };

  /// A builder for one set with hash range `range` (use
  /// params().range_for_size). The context outlives the builder.
  BatmapBuilder(const BatmapContext& ctx, std::uint32_t range);
  BatmapBuilder(const BatmapContext& ctx, std::uint32_t range, Options opt);
  /// Arena-backed builder: the cuckoo slot table lives in `arena` instead
  /// of a per-builder heap vector, so a shard constructing many batmaps
  /// allocates once and calls arena.reset() between rows. The arena must
  /// outlive the builder, and resetting it invalidates the builder.
  BatmapBuilder(const BatmapContext& ctx, std::uint32_t range, Options opt,
                util::Arena& arena);

  // slots_ aliases either owned_slots_ or arena memory; a compiler-
  // generated copy/move would leave it pointing into the source builder.
  BatmapBuilder(const BatmapBuilder&) = delete;
  BatmapBuilder& operator=(const BatmapBuilder&) = delete;
  BatmapBuilder(BatmapBuilder&&) = delete;
  BatmapBuilder& operator=(BatmapBuilder&&) = delete;

  /// Inserts element x < universe. Elements must be distinct across calls.
  /// Returns false iff x was recorded as failed. Note a failure may also
  /// evict a previously inserted element (also recorded in failures()).
  bool insert(std::uint64_t x);

  /// Elements not represented in the sealed batmap.
  const std::vector<std::uint64_t>& failures() const { return failures_; }
  const Stats& stats() const { return stats_; }

  /// True iff x currently has at least one copy placed.
  bool contains(std::uint64_t x) const;

  /// Removes x if present (both copies — cuckoo deletion is O(1)).
  /// Returns true iff x was stored. Elements recorded as failures stay in
  /// failures(); erase only affects placed elements.
  bool erase(std::uint64_t x);

  /// Validates the 2-of-3 invariants (every stored value in exactly two
  /// distinct tables, each at its hash position). Throws CheckError on
  /// violation. O(slots); meant for tests.
  void check_invariants() const;

  /// Compressed batmap. Builder remains valid (idempotent snapshot).
  Batmap seal() const;

  /// Uncompressed reference snapshot for oracle comparisons in tests.
  ReferenceBatmap seal_reference() const;

  std::uint32_t range() const { return range_; }

 private:
  static constexpr std::uint64_t kEmpty = ~0ull;

  std::uint64_t position(int t, std::uint64_t x) const {
    return ctx_->params().position(ctx_->permuted(t, x), t, range_);
  }

  /// One cuckoo walk trying to place a single copy of x. Returns kEmpty on
  /// success or the nestless element after MaxLoop rounds.
  std::uint64_t walk(std::uint64_t x);

  /// Removes every placed copy of x (checks its 3 positions).
  void remove_all(std::uint64_t x);

  /// Failure path: drop `x`, then restore the invariant for the nestless
  /// victim chain.
  void handle_failure(std::uint64_t x, std::uint64_t nestless);

  const BatmapContext* ctx_;
  std::uint32_t range_;
  Options opt_;
  std::vector<std::uint64_t> owned_slots_;  ///< backing store, heap mode only
  std::span<std::uint64_t> slots_;  ///< element value per position, kEmpty=⊥
  std::vector<std::uint64_t> failures_;
  Stats stats_;
};

/// Convenience: build + seal a batmap for `elements` (all < ctx.universe()),
/// appending any failed elements to *failed (if non-null).
Batmap build_batmap(const BatmapContext& ctx,
                    std::span<const std::uint64_t> elements,
                    std::vector<std::uint64_t>* failed = nullptr,
                    BatmapBuilder::Options opt = BatmapBuilder::Options{});

/// As above, with the builder's slot table taken from (and returned to)
/// `arena`: the arena is reset() after sealing, so per-row construction
/// scratch is recycled instead of reallocated. Only the sealed Batmap owns
/// heap memory on return.
Batmap build_batmap_arena(const BatmapContext& ctx,
                          std::span<const std::uint64_t> elements,
                          util::Arena& arena,
                          std::vector<std::uint64_t>* failed = nullptr,
                          BatmapBuilder::Options opt = BatmapBuilder::Options{});

}  // namespace repro::batmap
