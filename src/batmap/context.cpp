#include "batmap/context.hpp"

namespace repro::batmap {

BatmapContext::BatmapContext(std::uint64_t m, std::uint64_t seed,
                             std::uint32_t r0_min)
    : params_(LayoutParams::for_universe(m, r0_min)), perms_(m, seed) {}

}  // namespace repro::batmap
