#include "batmap/strip.hpp"

namespace repro::batmap {

std::uint32_t uniform_width(std::span<const std::uint32_t> widths,
                            std::size_t col, std::size_t cols) {
  if (cols == 0 || col + cols > widths.size()) return 0;
  const std::uint32_t wc = widths[col];
  for (std::size_t j = 1; j < cols; ++j) {
    if (widths[col + j] != wc) return 0;
  }
  return wc;
}

bool strip_compatible(std::span<const std::uint32_t> widths, std::uint32_t wr,
                      std::size_t col, std::size_t cols) {
  const std::uint32_t wc = uniform_width(widths, col, cols);
  return wc != 0 && wr != 0 && wc >= wr && wc % wr == 0;
}

bool strip_tile_compatible(std::span<const std::uint32_t> widths,
                           std::size_t row_begin, std::size_t row_end,
                           std::size_t col_begin, std::size_t col_end) {
  if (row_end <= row_begin || row_end > widths.size()) return false;
  const std::uint32_t wc =
      uniform_width(widths, col_begin, col_end - col_begin);
  if (wc == 0) return false;
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const std::uint32_t wr = widths[r];
    if (wr == 0 || wc < wr || wc % wr != 0) return false;
  }
  return true;
}

std::vector<WidthRun> width_runs(std::span<const std::uint32_t> widths) {
  std::vector<WidthRun> runs;
  std::size_t i = 0;
  while (i < widths.size()) {
    std::size_t j = i + 1;
    while (j < widths.size() && widths[j] == widths[i]) ++j;
    runs.push_back(WidthRun{i, j, widths[i]});
    i = j;
  }
  return runs;
}

}  // namespace repro::batmap
