#include "batmap/intersect.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/fnv.hpp"

namespace repro::batmap {

BatmapStore::BatmapStore(std::uint64_t universe)
    : BatmapStore(universe, Options{}) {}

BatmapStore::BatmapStore(std::uint64_t universe, Options opt)
    : ctx_(universe, opt.seed), opt_(opt) {}

std::size_t BatmapStore::add(std::span<const std::uint64_t> elements) {
  std::vector<std::uint64_t> sorted(elements.begin(), elements.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::vector<std::uint64_t> failed;
  maps_.push_back(build_batmap(ctx_, sorted, &failed, opt_.builder));
  std::sort(failed.begin(), failed.end());
  failed_.push_back(std::move(failed));
  if (opt_.keep_elements) {
    elements_.push_back(std::move(sorted));
  } else {
    elements_.emplace_back();
  }
  return maps_.size() - 1;
}

const Batmap& BatmapStore::map(std::size_t id) const {
  REPRO_CHECK(id < maps_.size());
  return maps_[id];
}

std::span<const std::uint64_t> BatmapStore::failures(std::size_t id) const {
  REPRO_CHECK(id < failed_.size());
  return failed_[id];
}

std::span<const std::uint64_t> BatmapStore::elements(std::size_t id) const {
  REPRO_CHECK(id < elements_.size());
  return elements_[id];
}

std::uint64_t BatmapStore::raw_count(std::size_t a, std::size_t b) const {
  return intersect_count(map(a), map(b));
}

std::uint64_t BatmapStore::intersection_size(std::size_t a,
                                             std::size_t b) const {
  REPRO_CHECK(a < maps_.size() && b < maps_.size());
  return patched_intersect_count(maps_[a], failed_[a], elements_[a], maps_[b],
                                 failed_[b], elements_[b]);
}

std::uint64_t BatmapStore::batmap_bytes() const {
  std::uint64_t total = 0;
  for (const auto& m : maps_) total += m.memory_bytes();
  return total;
}

std::uint64_t BatmapStore::memory_bytes() const {
  std::uint64_t total = batmap_bytes();
  for (const auto& e : elements_) total += e.size() * sizeof(std::uint64_t);
  for (const auto& f : failed_) total += f.size() * sizeof(std::uint64_t);
  return total;
}

std::uint64_t BatmapStore::total_failures() const {
  std::uint64_t total = 0;
  for (const auto& f : failed_) total += f.size();
  return total;
}

namespace {

/// First index i' >= i with v[i'] >= x (galloping from i: exponential probe
/// then binary search within the bracketed range). Across a sorted probe
/// sequence the cursors only move forward, so a whole failure list costs a
/// single linear/galloping merge instead of per-element binary searches.
std::size_t gallop_to(std::span<const std::uint64_t> v, std::size_t i,
                      std::uint64_t x) {
  if (i >= v.size() || v[i] >= x) return i;
  std::size_t lo = i;          // v[lo] < x
  std::size_t hi = i + 1;
  std::size_t step = 1;
  while (hi < v.size() && v[hi] < x) {
    lo = hi;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, v.size());
  return static_cast<std::size_t>(
      std::lower_bound(v.begin() + lo, v.begin() + hi, x) - v.begin());
}

/// |list ∩ a ∩ b| for sorted lists, one forward merge pass.
std::uint64_t count_in_both(std::span<const std::uint64_t> list,
                            std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b) {
  std::uint64_t c = 0;
  std::size_t ia = 0, ib = 0;
  for (const std::uint64_t x : list) {
    ia = gallop_to(a, ia, x);
    if (ia == a.size()) break;
    if (a[ia] != x) continue;
    ib = gallop_to(b, ib, x);
    if (ib == b.size()) break;
    if (b[ib] == x) ++c;
  }
  return c;
}

}  // namespace

std::uint64_t failure_patch_correction(
    std::span<const std::uint64_t> failed_a,
    std::span<const std::uint64_t> sorted_a,
    std::span<const std::uint64_t> failed_b,
    std::span<const std::uint64_t> sorted_b) {
  // An element in both failure lists must be counted once, hence the
  // exclusion of duplicates from the second pass.
  std::uint64_t c = count_in_both(failed_a, sorted_a, sorted_b);
  std::size_t ifa = 0, isa = 0, isb = 0;
  for (const std::uint64_t x : failed_b) {
    ifa = gallop_to(failed_a, ifa, x);
    if (ifa < failed_a.size() && failed_a[ifa] == x) continue;
    isa = gallop_to(sorted_a, isa, x);
    if (isa == sorted_a.size()) break;
    if (sorted_a[isa] != x) continue;
    isb = gallop_to(sorted_b, isb, x);
    if (isb == sorted_b.size()) break;
    if (sorted_b[isb] == x) ++c;
  }
  return c;
}

std::uint64_t patched_intersect_count(
    const Batmap& map_a, std::span<const std::uint64_t> failed_a,
    std::span<const std::uint64_t> sorted_a, const Batmap& map_b,
    std::span<const std::uint64_t> failed_b,
    std::span<const std::uint64_t> sorted_b) {
  // Patch elements missing from either map.
  return intersect_count(map_a, map_b) +
         failure_patch_correction(failed_a, sorted_a, failed_b, sorted_b);
}

namespace {

constexpr std::uint64_t kMagic = 0x424154'4d41'5031ull;  // "BATMAP1"
// Version 2: every payload byte after the magic+version preamble is folded
// into an FNV-1a digest appended as a trailer; load() re-hashes while
// parsing and rejects any mismatch, so a single flipped bit anywhere in
// the stream fails loudly instead of decoding into a corrupt store.
constexpr std::uint32_t kVersion = 2;
// Sanity cap on serialized vector lengths: corruption in a length field
// must raise CheckError, not a multi-terabyte allocation.
constexpr std::uint64_t kMaxVecElems = 1ull << 40;

/// Hashing ostream shim: everything written after the preamble flows
/// through here so the trailer digest covers the whole payload.
struct HashedWriter {
  std::ostream& out;
  util::Fnv1a hash;

  void write(const void* data, std::size_t bytes) {
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(bytes));
    hash.update(data, bytes);
  }
  template <typename T>
  void pod(const T& v) {
    write(&v, sizeof(T));
  }
  template <typename T>
  void span(std::span<const T> v) {
    pod<std::uint64_t>(v.size());
    write(v.data(), v.size() * sizeof(T));
  }
};

/// Hashing istream shim, mirror of HashedWriter.
struct HashedReader {
  std::istream& in;
  util::Fnv1a hash;

  void read(void* data, std::size_t bytes) {
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
    REPRO_CHECK_MSG(in.good(), "truncated batmap store stream");
    hash.update(data, bytes);
  }
  template <typename T>
  T pod() {
    T v{};
    read(&v, sizeof(T));
    return v;
  }
  /// Bytes left in the stream, or -1 when it is not seekable.
  std::int64_t remaining_bytes() {
    const auto cur = in.tellg();
    if (cur == std::istream::pos_type(-1)) return -1;
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    in.seekg(cur);
    if (end == std::istream::pos_type(-1)) return -1;
    return static_cast<std::int64_t>(end - cur);
  }
  template <typename T>
  std::vector<T> vec() {
    const auto size = pod<std::uint64_t>();
    // A corrupt length field must raise CheckError, never reach the
    // allocator: bound by the bytes actually left in the stream when it
    // is seekable (files and stringstreams are), and in any case by a
    // cap checked with a division so huge values cannot wrap past it.
    const std::int64_t left = remaining_bytes();
    REPRO_CHECK_MSG(size < kMaxVecElems / sizeof(T) &&
                        (left < 0 || size <= static_cast<std::uint64_t>(left) /
                                                 sizeof(T)),
                    "implausible vector size (corrupt stream)");
    std::vector<T> v(size);
    read(v.data(), size * sizeof(T));
    return v;
  }
};

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  REPRO_CHECK_MSG(in.good(), "truncated batmap store stream");
  return v;
}

}  // namespace

void BatmapStore::save(std::ostream& out) const {
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  HashedWriter w{out, {}};
  w.pod<std::uint64_t>(ctx_.universe());
  w.pod<std::uint64_t>(opt_.seed);
  w.pod<std::uint8_t>(opt_.keep_elements ? 1 : 0);
  w.pod<std::uint64_t>(maps_.size());
  for (std::size_t i = 0; i < maps_.size(); ++i) {
    w.pod<std::uint32_t>(maps_[i].range());
    w.pod<std::uint64_t>(maps_[i].stored_elements());
    w.span(maps_[i].words());  // streamed straight from the map
    w.span<std::uint64_t>(failed_[i]);
    w.span<std::uint64_t>(elements_[i]);
  }
  write_pod<std::uint64_t>(out, w.hash.digest());  // trailer, not hashed
  REPRO_CHECK_MSG(out.good(), "write failed");
}

BatmapStore BatmapStore::load(std::istream& in) {
  REPRO_CHECK_MSG(read_pod<std::uint64_t>(in) == kMagic,
                  "not a batmap store stream");
  REPRO_CHECK_MSG(read_pod<std::uint32_t>(in) == kVersion,
                  "unsupported batmap store version");
  HashedReader r{in, {}};
  const auto universe = r.pod<std::uint64_t>();
  Options opt;
  opt.seed = r.pod<std::uint64_t>();
  opt.keep_elements = r.pod<std::uint8_t>() != 0;
  BatmapStore store(universe, opt);
  const auto count = r.pod<std::uint64_t>();
  REPRO_CHECK_MSG(count < kMaxVecElems,
                  "implausible map count (corrupt stream)");
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto range = r.pod<std::uint32_t>();
    const auto stored = r.pod<std::uint64_t>();
    auto words = r.vec<std::uint32_t>();
    store.maps_.emplace_back(range, stored, std::move(words),
                             store.ctx_.params());
    store.failed_.push_back(r.vec<std::uint64_t>());
    store.elements_.push_back(r.vec<std::uint64_t>());
  }
  const std::uint64_t expected = r.hash.digest();
  REPRO_CHECK_MSG(read_pod<std::uint64_t>(in) == expected,
                  "batmap store checksum mismatch (corrupt stream)");
  return store;
}

}  // namespace repro::batmap
