#include "batmap/intersect.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

namespace repro::batmap {

BatmapStore::BatmapStore(std::uint64_t universe)
    : BatmapStore(universe, Options{}) {}

BatmapStore::BatmapStore(std::uint64_t universe, Options opt)
    : ctx_(universe, opt.seed), opt_(opt) {}

std::size_t BatmapStore::add(std::span<const std::uint64_t> elements) {
  std::vector<std::uint64_t> sorted(elements.begin(), elements.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::vector<std::uint64_t> failed;
  maps_.push_back(build_batmap(ctx_, sorted, &failed, opt_.builder));
  std::sort(failed.begin(), failed.end());
  failed_.push_back(std::move(failed));
  if (opt_.keep_elements) {
    elements_.push_back(std::move(sorted));
  } else {
    elements_.emplace_back();
  }
  return maps_.size() - 1;
}

const Batmap& BatmapStore::map(std::size_t id) const {
  REPRO_CHECK(id < maps_.size());
  return maps_[id];
}

std::span<const std::uint64_t> BatmapStore::failures(std::size_t id) const {
  REPRO_CHECK(id < failed_.size());
  return failed_[id];
}

std::span<const std::uint64_t> BatmapStore::elements(std::size_t id) const {
  REPRO_CHECK(id < elements_.size());
  return elements_[id];
}

std::uint64_t BatmapStore::raw_count(std::size_t a, std::size_t b) const {
  return intersect_count(map(a), map(b));
}

std::uint64_t BatmapStore::intersection_size(std::size_t a,
                                             std::size_t b) const {
  REPRO_CHECK(a < maps_.size() && b < maps_.size());
  return patched_intersect_count(maps_[a], failed_[a], elements_[a], maps_[b],
                                 failed_[b], elements_[b]);
}

std::uint64_t BatmapStore::batmap_bytes() const {
  std::uint64_t total = 0;
  for (const auto& m : maps_) total += m.memory_bytes();
  return total;
}

std::uint64_t BatmapStore::memory_bytes() const {
  std::uint64_t total = batmap_bytes();
  for (const auto& e : elements_) total += e.size() * sizeof(std::uint64_t);
  for (const auto& f : failed_) total += f.size() * sizeof(std::uint64_t);
  return total;
}

std::uint64_t BatmapStore::total_failures() const {
  std::uint64_t total = 0;
  for (const auto& f : failed_) total += f.size();
  return total;
}

namespace {
/// |list ∩ a ∩ b| for a sorted failure list and sorted element lists.
std::uint64_t count_in_both(std::span<const std::uint64_t> list,
                            std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b) {
  std::uint64_t c = 0;
  for (const std::uint64_t x : list) {
    if (std::binary_search(a.begin(), a.end(), x) &&
        std::binary_search(b.begin(), b.end(), x))
      ++c;
  }
  return c;
}
}  // namespace

std::uint64_t patched_intersect_count(
    const Batmap& map_a, std::span<const std::uint64_t> failed_a,
    std::span<const std::uint64_t> sorted_a, const Batmap& map_b,
    std::span<const std::uint64_t> failed_b,
    std::span<const std::uint64_t> sorted_b) {
  std::uint64_t count = intersect_count(map_a, map_b);
  // Patch elements missing from either map. An element in both failure lists
  // must be counted once, hence the exclusion of duplicates.
  count += count_in_both(failed_a, sorted_a, sorted_b);
  for (const std::uint64_t x : failed_b) {
    if (std::binary_search(failed_a.begin(), failed_a.end(), x)) continue;
    if (std::binary_search(sorted_a.begin(), sorted_a.end(), x) &&
        std::binary_search(sorted_b.begin(), sorted_b.end(), x))
      ++count;
  }
  return count;
}

namespace {

constexpr std::uint64_t kMagic = 0x424154'4d41'5031ull;  // "BATMAP1"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  REPRO_CHECK_MSG(in.good(), "truncated batmap store stream");
  return v;
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  write_pod<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& in) {
  const auto size = read_pod<std::uint64_t>(in);
  std::vector<T> v(size);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  REPRO_CHECK_MSG(in.good(), "truncated batmap store stream");
  return v;
}

}  // namespace

void BatmapStore::save(std::ostream& out) const {
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod<std::uint64_t>(out, ctx_.universe());
  write_pod<std::uint64_t>(out, opt_.seed);
  write_pod<std::uint8_t>(out, opt_.keep_elements ? 1 : 0);
  write_pod<std::uint64_t>(out, maps_.size());
  for (std::size_t i = 0; i < maps_.size(); ++i) {
    write_pod<std::uint32_t>(out, maps_[i].range());
    write_pod<std::uint64_t>(out, maps_[i].stored_elements());
    write_vec(out, std::vector<std::uint32_t>(maps_[i].words().begin(),
                                              maps_[i].words().end()));
    write_vec(out, failed_[i]);
    write_vec(out, elements_[i]);
  }
  REPRO_CHECK_MSG(out.good(), "write failed");
}

BatmapStore BatmapStore::load(std::istream& in) {
  REPRO_CHECK_MSG(read_pod<std::uint64_t>(in) == kMagic,
                  "not a batmap store stream");
  REPRO_CHECK_MSG(read_pod<std::uint32_t>(in) == kVersion,
                  "unsupported batmap store version");
  const auto universe = read_pod<std::uint64_t>(in);
  Options opt;
  opt.seed = read_pod<std::uint64_t>(in);
  opt.keep_elements = read_pod<std::uint8_t>(in) != 0;
  BatmapStore store(universe, opt);
  const auto count = read_pod<std::uint64_t>(in);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto range = read_pod<std::uint32_t>(in);
    const auto stored = read_pod<std::uint64_t>(in);
    auto words = read_vec<std::uint32_t>(in);
    store.maps_.emplace_back(range, stored, std::move(words),
                             store.ctx_.params());
    store.failed_.push_back(read_vec<std::uint64_t>(in));
    store.elements_.push_back(read_vec<std::uint64_t>(in));
  }
  return store;
}

}  // namespace repro::batmap
