#include "batmap/intersect.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

namespace repro::batmap {

BatmapStore::BatmapStore(std::uint64_t universe)
    : BatmapStore(universe, Options{}) {}

BatmapStore::BatmapStore(std::uint64_t universe, Options opt)
    : ctx_(universe, opt.seed), opt_(opt) {}

std::size_t BatmapStore::add(std::span<const std::uint64_t> elements) {
  std::vector<std::uint64_t> sorted(elements.begin(), elements.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::vector<std::uint64_t> failed;
  maps_.push_back(build_batmap(ctx_, sorted, &failed, opt_.builder));
  std::sort(failed.begin(), failed.end());
  failed_.push_back(std::move(failed));
  if (opt_.keep_elements) {
    elements_.push_back(std::move(sorted));
  } else {
    elements_.emplace_back();
  }
  return maps_.size() - 1;
}

const Batmap& BatmapStore::map(std::size_t id) const {
  REPRO_CHECK(id < maps_.size());
  return maps_[id];
}

std::span<const std::uint64_t> BatmapStore::failures(std::size_t id) const {
  REPRO_CHECK(id < failed_.size());
  return failed_[id];
}

std::span<const std::uint64_t> BatmapStore::elements(std::size_t id) const {
  REPRO_CHECK(id < elements_.size());
  return elements_[id];
}

std::uint64_t BatmapStore::raw_count(std::size_t a, std::size_t b) const {
  return intersect_count(map(a), map(b));
}

std::uint64_t BatmapStore::intersection_size(std::size_t a,
                                             std::size_t b) const {
  REPRO_CHECK(a < maps_.size() && b < maps_.size());
  return patched_intersect_count(maps_[a], failed_[a], elements_[a], maps_[b],
                                 failed_[b], elements_[b]);
}

std::uint64_t BatmapStore::batmap_bytes() const {
  std::uint64_t total = 0;
  for (const auto& m : maps_) total += m.memory_bytes();
  return total;
}

std::uint64_t BatmapStore::memory_bytes() const {
  std::uint64_t total = batmap_bytes();
  for (const auto& e : elements_) total += e.size() * sizeof(std::uint64_t);
  for (const auto& f : failed_) total += f.size() * sizeof(std::uint64_t);
  return total;
}

std::uint64_t BatmapStore::total_failures() const {
  std::uint64_t total = 0;
  for (const auto& f : failed_) total += f.size();
  return total;
}

namespace {

/// First index i' >= i with v[i'] >= x (galloping from i: exponential probe
/// then binary search within the bracketed range). Across a sorted probe
/// sequence the cursors only move forward, so a whole failure list costs a
/// single linear/galloping merge instead of per-element binary searches.
std::size_t gallop_to(std::span<const std::uint64_t> v, std::size_t i,
                      std::uint64_t x) {
  if (i >= v.size() || v[i] >= x) return i;
  std::size_t lo = i;          // v[lo] < x
  std::size_t hi = i + 1;
  std::size_t step = 1;
  while (hi < v.size() && v[hi] < x) {
    lo = hi;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, v.size());
  return static_cast<std::size_t>(
      std::lower_bound(v.begin() + lo, v.begin() + hi, x) - v.begin());
}

/// |list ∩ a ∩ b| for sorted lists, one forward merge pass.
std::uint64_t count_in_both(std::span<const std::uint64_t> list,
                            std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b) {
  std::uint64_t c = 0;
  std::size_t ia = 0, ib = 0;
  for (const std::uint64_t x : list) {
    ia = gallop_to(a, ia, x);
    if (ia == a.size()) break;
    if (a[ia] != x) continue;
    ib = gallop_to(b, ib, x);
    if (ib == b.size()) break;
    if (b[ib] == x) ++c;
  }
  return c;
}

}  // namespace

std::uint64_t failure_patch_correction(
    std::span<const std::uint64_t> failed_a,
    std::span<const std::uint64_t> sorted_a,
    std::span<const std::uint64_t> failed_b,
    std::span<const std::uint64_t> sorted_b) {
  // An element in both failure lists must be counted once, hence the
  // exclusion of duplicates from the second pass.
  std::uint64_t c = count_in_both(failed_a, sorted_a, sorted_b);
  std::size_t ifa = 0, isa = 0, isb = 0;
  for (const std::uint64_t x : failed_b) {
    ifa = gallop_to(failed_a, ifa, x);
    if (ifa < failed_a.size() && failed_a[ifa] == x) continue;
    isa = gallop_to(sorted_a, isa, x);
    if (isa == sorted_a.size()) break;
    if (sorted_a[isa] != x) continue;
    isb = gallop_to(sorted_b, isb, x);
    if (isb == sorted_b.size()) break;
    if (sorted_b[isb] == x) ++c;
  }
  return c;
}

std::uint64_t patched_intersect_count(
    const Batmap& map_a, std::span<const std::uint64_t> failed_a,
    std::span<const std::uint64_t> sorted_a, const Batmap& map_b,
    std::span<const std::uint64_t> failed_b,
    std::span<const std::uint64_t> sorted_b) {
  // Patch elements missing from either map.
  return intersect_count(map_a, map_b) +
         failure_patch_correction(failed_a, sorted_a, failed_b, sorted_b);
}

namespace {

constexpr std::uint64_t kMagic = 0x424154'4d41'5031ull;  // "BATMAP1"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  REPRO_CHECK_MSG(in.good(), "truncated batmap store stream");
  return v;
}

template <typename T>
void write_span(std::ostream& out, std::span<const T> v) {
  write_pod<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& in) {
  const auto size = read_pod<std::uint64_t>(in);
  std::vector<T> v(size);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  REPRO_CHECK_MSG(in.good(), "truncated batmap store stream");
  return v;
}

}  // namespace

void BatmapStore::save(std::ostream& out) const {
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod<std::uint64_t>(out, ctx_.universe());
  write_pod<std::uint64_t>(out, opt_.seed);
  write_pod<std::uint8_t>(out, opt_.keep_elements ? 1 : 0);
  write_pod<std::uint64_t>(out, maps_.size());
  for (std::size_t i = 0; i < maps_.size(); ++i) {
    write_pod<std::uint32_t>(out, maps_[i].range());
    write_pod<std::uint64_t>(out, maps_[i].stored_elements());
    write_span(out, maps_[i].words());  // streamed straight from the map
    write_span<std::uint64_t>(out, failed_[i]);
    write_span<std::uint64_t>(out, elements_[i]);
  }
  REPRO_CHECK_MSG(out.good(), "write failed");
}

BatmapStore BatmapStore::load(std::istream& in) {
  REPRO_CHECK_MSG(read_pod<std::uint64_t>(in) == kMagic,
                  "not a batmap store stream");
  REPRO_CHECK_MSG(read_pod<std::uint32_t>(in) == kVersion,
                  "unsupported batmap store version");
  const auto universe = read_pod<std::uint64_t>(in);
  Options opt;
  opt.seed = read_pod<std::uint64_t>(in);
  opt.keep_elements = read_pod<std::uint8_t>(in) != 0;
  BatmapStore store(universe, opt);
  const auto count = read_pod<std::uint64_t>(in);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto range = read_pod<std::uint32_t>(in);
    const auto stored = read_pod<std::uint64_t>(in);
    auto words = read_vec<std::uint32_t>(in);
    store.maps_.emplace_back(range, stored, std::move(words),
                             store.ctx_.params());
    store.failed_.push_back(read_vec<std::uint64_t>(in));
    store.elements_.push_back(read_vec<std::uint64_t>(in));
  }
  return store;
}

}  // namespace repro::batmap
