#include "batmap/layout.hpp"

namespace repro::batmap {

LayoutParams LayoutParams::for_universe(std::uint64_t m,
                                        std::uint32_t r0_min) {
  REPRO_CHECK_MSG(m >= 1, "universe must be non-empty");
  REPRO_CHECK_MSG(bits::is_pow2(r0_min) && r0_min >= 4,
                  "r0_min must be a power of two >= 4");
  LayoutParams p;
  p.m = m;
  // Smallest shift such that the code (max_v >> s) + 1 fits in 7 bits.
  unsigned s = 0;
  while ((((m - 1) >> s) + 1) > 127) ++s;
  p.s = s;
  // The compression is only decodable when every hash range is >= 2^s.
  std::uint32_t r0 = r0_min;
  if (s > 0) {
    const std::uint64_t floor = 1ull << s;
    while (r0 < floor) r0 *= 2;
  }
  p.r0 = r0;
  REPRO_CHECK(p.valid());
  return p;
}

std::uint32_t LayoutParams::range_for_size(std::uint64_t size) const {
  // Paper: r_i = 2·2^⌈log₂|S_i|⌉, i.e. in [2|S_i|, 4|S_i|). This satisfies
  // the analysis requirement r ≥ (2+ε)·|S_i| up to the power-of-two rounding
  // and guarantees at least |S_i| free slots among the 3r positions.
  std::uint64_t r = (size == 0) ? r0 : 2ull * bits::next_pow2(size);
  if (r < r0) r = r0;
  REPRO_CHECK_MSG(r <= 0xffffffffull, "set too large for 32-bit range");
  return static_cast<std::uint32_t>(r);
}

std::uint64_t LayoutParams::reconstruct(std::uint64_t pos, std::uint8_t code7,
                                        std::uint32_t r) const {
  REPRO_DCHECK(code7 >= 1 && code7 <= 127);
  // Position decomposes as 3r₀·block + t·r₀ + low.
  const std::uint64_t block = pos / (3ull * r0);
  const std::uint64_t low = pos % r0;
  const std::uint64_t slot = block * r0 + low;  // π_t(x) mod r
  const std::uint64_t high = static_cast<std::uint64_t>(code7 - 1) << s;
  // π_t(x) = high | (slot mod 2^s): since 2^s divides r and slot = v mod r,
  // the low s bits of v equal the low s bits of slot.
  const std::uint64_t low_s = (s == 0) ? 0 : (slot & ((1ull << s) - 1));
  (void)r;
  return high | low_s;
}

}  // namespace repro::batmap
