// BatmapContext: everything shared by all batmaps of one universe [0, m) —
// the layout parameters and the three global permutations π_1, π_2, π_3.
// Batmaps are only comparable when built against the same context (same
// permutations, nested power-of-two ranges).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "batmap/layout.hpp"
#include "hash/permutation.hpp"

namespace repro::batmap {

class BatmapContext {
 public:
  /// Universe [0, m); `seed` fixes the permutations, `r0_min` optionally
  /// raises the global minimum range.
  explicit BatmapContext(std::uint64_t m, std::uint64_t seed = 0x9d2c5680,
                         std::uint32_t r0_min = 4);

  const LayoutParams& params() const { return params_; }
  std::uint64_t universe() const { return params_.m; }

  /// Permuted value π_t(x), t ∈ {0,1,2}.
  std::uint64_t permuted(int t, std::uint64_t x) const {
    return perms_.pi(t)(x);
  }
  /// x from π_t(x).
  std::uint64_t unpermuted(int t, std::uint64_t v) const {
    return perms_.pi(t).inverse(v);
  }

  const hash::PermutationTriple& perms() const { return perms_; }

 private:
  LayoutParams params_;
  hash::PermutationTriple perms_;
};

}  // namespace repro::batmap
