// Vectorized batch-intersect kernels: the SWAR match-count of swar.hpp
// widened to SSE2 / AVX2 / AVX-512BW (x86) or NEON (aarch64) lanes, with
// runtime CPU dispatch and the portable 64-bit SWAR loop as fallback.
//
// The slot-match rule vectorizes per byte lane: two slot bytes match iff
// their low 7 code bits agree AND at least one indicator (MSB) is set, so
//
//   match = cmpeq_epi8(x & 0x7f, y & 0x7f) & (x | y)
//
// leaves the MSB of each matching byte set; movemask/movepi8_mask extracts
// exactly those MSBs and a popcount yields the per-vector match count. This
// is the same computation the scalar SWAR performs with adds and masks, one
// cache line at a time instead of one word.
//
// Dispatch: the widest tier supported by both the build and the running CPU
// is selected once; `REPRO_KERNEL=scalar|sse2|avx2|avx512|neon` (or
// force_tier(), for tests and benches) overrides it. All tiers produce
// bit-identical counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace repro::batmap::simd {

enum class Tier : int {
  kScalar = 0,  ///< portable 64-bit SWAR (always available)
  kSse2 = 1,    ///< 16 slot bytes per compare (x86-64 baseline)
  kAvx2 = 2,    ///< 32 slot bytes per compare
  kAvx512 = 3,  ///< 64 slot bytes per compare (AVX-512F+BW)
  kNeon = 4,    ///< 16 slot bytes per compare (aarch64)
};

const char* tier_name(Tier t);

/// Tiers usable on this build+CPU, narrowest (kScalar) first.
std::span<const Tier> supported_tiers();

/// Widest supported tier.
Tier best_tier();

/// Tier the dispatched entry points use: best_tier() unless overridden by
/// the REPRO_KERNEL environment variable or force_tier().
Tier active_tier();

/// Force the dispatched tier (tests/ablations). Unsupported tiers are
/// ignored; returns the tier now in effect. Not safe concurrently with
/// running kernels.
Tier force_tier(Tier t);

/// Drop a force_tier() override (reverts to env/auto selection).
void clear_forced_tier();

// ---- per-tier entry points (for tests and ablations) -----------------------

/// Matching slots between equal-length word spans via a specific tier.
/// Calling an unsupported tier falls back to scalar.
std::uint64_t match_count_tier(Tier t, const std::uint32_t* a,
                               const std::uint32_t* b, std::size_t n);

// ---- dispatched entry points ------------------------------------------------

/// Matching slots between equal-length word spans a and b.
std::uint64_t match_count(const std::uint32_t* a, const std::uint32_t* b,
                          std::size_t n);

inline std::uint64_t match_count(std::span<const std::uint32_t> a,
                                 std::span<const std::uint32_t> b) {
  return match_count(a.data(), b.data(), a.size());
}

/// The batmap sweep: word i of the larger span against word (i mod ws) of
/// the smaller. wb must be a multiple of ws (layout widths are 3·2^j).
std::uint64_t match_count_cyclic(const std::uint32_t* big, std::size_t wb,
                                 const std::uint32_t* small, std::size_t ws);

/// Register-blocked strip kernel: one row span against kStripCols column
/// spans of the same length n. Each row vector is loaded once and compared
/// against all columns before moving on, so a strip costs one row read
/// instead of kStripCols. Adds into counts[0..kStripCols).
inline constexpr std::size_t kStripCols = 4;
void match_count_strip(const std::uint32_t* row, std::size_t n,
                       const std::uint32_t* const cols[kStripCols],
                       std::uint64_t counts[kStripCols]);

}  // namespace repro::batmap::simd
