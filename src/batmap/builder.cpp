#include "batmap/builder.hpp"

#include <algorithm>

namespace repro::batmap {

namespace {
void check_builder_args(const BatmapContext& ctx, std::uint32_t range,
                        const BatmapBuilder::Options& opt) {
  REPRO_CHECK_MSG(bits::is_pow2(range) && range >= ctx.params().r0,
                  "range must be a power of two >= r0");
  REPRO_CHECK(opt.max_loop >= 1 && opt.max_cascade >= 1);
}
}  // namespace

BatmapBuilder::BatmapBuilder(const BatmapContext& ctx, std::uint32_t range)
    : BatmapBuilder(ctx, range, Options{}) {}

BatmapBuilder::BatmapBuilder(const BatmapContext& ctx, std::uint32_t range,
                             Options opt)
    : ctx_(&ctx), range_(range), opt_(opt) {
  check_builder_args(ctx, range, opt);
  owned_slots_.assign(LayoutParams::slots(range_), kEmpty);
  slots_ = owned_slots_;
}

BatmapBuilder::BatmapBuilder(const BatmapContext& ctx, std::uint32_t range,
                             Options opt, util::Arena& arena)
    : ctx_(&ctx), range_(range), opt_(opt) {
  check_builder_args(ctx, range, opt);
  slots_ = arena.alloc_array<std::uint64_t>(LayoutParams::slots(range_));
  std::fill(slots_.begin(), slots_.end(), kEmpty);
}

bool BatmapBuilder::contains(std::uint64_t x) const {
  for (int t = 0; t < 3; ++t) {
    if (slots_[position(t, x)] == x) return true;
  }
  return false;
}

bool BatmapBuilder::erase(std::uint64_t x) {
  if (!contains(x)) return false;
  remove_all(x);
  --stats_.inserted;
  return true;
}

std::uint64_t BatmapBuilder::walk(std::uint64_t x) {
  ++stats_.walks;
  std::uint64_t tau = x;
  for (int round = 0; round < opt_.max_loop; ++round) {
    for (int t = 0; t < 3; ++t) {
      std::uint64_t& slot = slots_[position(t, tau)];
      std::swap(tau, slot);
      ++stats_.swaps;
      if (tau == kEmpty) return kEmpty;
    }
  }
  return tau;
}

void BatmapBuilder::remove_all(std::uint64_t x) {
  for (int t = 0; t < 3; ++t) {
    std::uint64_t& slot = slots_[position(t, x)];
    if (slot == x) slot = kEmpty;
  }
}

void BatmapBuilder::handle_failure(std::uint64_t x, std::uint64_t nestless) {
  // §III-C: delete any occurrences of x, then re-insert the nestless element
  // (unless it is x itself). Deleting x frees at least one slot, so the
  // cascade converges quickly; if it does not within max_cascade rounds we
  // evict the current nestless element and record it as failed as well.
  remove_all(x);
  failures_.push_back(x);
  ++stats_.failed;
  std::uint64_t pending = nestless;
  if (pending == x || pending == kEmpty) return;
  for (int round = 0; round < opt_.max_cascade; ++round) {
    const std::uint64_t evicted = walk(pending);
    if (evicted == kEmpty) return;  // chain repaired
    if (evicted == pending) break;  // walk cycled back; drop it
    // `pending` got a copy placed during the walk; the new nestless element
    // is `evicted`. Continue restoring its 2-copy invariant.
    pending = evicted;
  }
  // Could not repair: remove the dangling element completely and record it.
  remove_all(pending);
  failures_.push_back(pending);
  ++stats_.failed;
}

bool BatmapBuilder::insert(std::uint64_t x) {
  REPRO_CHECK_MSG(x < ctx_->universe(), "element outside universe");
  REPRO_DCHECK(x != kEmpty);
  REPRO_DCHECK(!contains(x));
  // Two copies (paper: "the insert procedure is called twice").
  for (int copy = 0; copy < 2; ++copy) {
    const std::uint64_t nestless = walk(x);
    if (nestless != kEmpty) {
      handle_failure(x, nestless);
      return false;
    }
  }
  ++stats_.inserted;
  return true;
}

void BatmapBuilder::check_invariants() const {
  // Every stored value occurs exactly twice, in two distinct tables, at its
  // own hash positions.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t p = 0; p < slots_.size(); ++p) {
    const std::uint64_t v = slots_[p];
    if (v == kEmpty) continue;
    const int t = ctx_->params().table_of(p);
    REPRO_CHECK_MSG(position(t, v) == p, "value stored at wrong position");
    seen.push_back(v);
  }
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size(); i += 2) {
    REPRO_CHECK_MSG(i + 1 < seen.size() && seen[i] == seen[i + 1],
                    "value does not occur exactly twice");
    REPRO_CHECK_MSG(i + 2 >= seen.size() || seen[i + 2] != seen[i],
                    "value occurs more than twice");
  }
  for (const std::uint64_t f : failures_) {
    REPRO_CHECK_MSG(!std::binary_search(seen.begin(), seen.end(), f),
                    "failed element still stored");
  }
}

namespace {
/// Cyclic-successor test: with both copies of a value in tables ta and tb,
/// the copy in table `t` is the LAST of the two iff the other table is its
/// cyclic predecessor (pairs {1,2}->2, {2,3}->3, {3,1}->1 in 1-based terms).
bool is_last_occurrence(int t, int t_other) {
  return (t_other + 1) % 3 == t;
}
}  // namespace

Batmap BatmapBuilder::seal() const {
  const LayoutParams& prm = ctx_->params();
  std::vector<std::uint32_t> words(LayoutParams::words(range_), 0u);
  std::uint64_t stored = 0;
  for (std::uint64_t p = 0; p < slots_.size(); ++p) {
    const std::uint64_t v = slots_[p];
    if (v == kEmpty) continue;
    const int t = prm.table_of(p);
    // Locate the other copy to derive the indicator bit.
    int t_other = -1;
    for (int u = 0; u < 3; ++u) {
      if (u == t) continue;
      if (slots_[position(u, v)] == v) {
        REPRO_CHECK_MSG(t_other == -1, "value stored in all three tables");
        t_other = u;
      }
    }
    REPRO_CHECK_MSG(t_other != -1, "value stored only once");
    const bool last = is_last_occurrence(t, t_other);
    const std::uint8_t byte = static_cast<std::uint8_t>(
        (last ? 0x80u : 0x00u) | prm.code(ctx_->permuted(t, v)));
    words[p >> 2] |= static_cast<std::uint32_t>(byte) << (8 * (p & 3));
    if (last) ++stored;
  }
  return Batmap(range_, stored, std::move(words), prm);
}

ReferenceBatmap BatmapBuilder::seal_reference() const {
  std::vector<std::uint64_t> values(slots_.size(), ReferenceBatmap::kEmpty);
  std::vector<std::uint8_t> last(slots_.size(), 0);
  const LayoutParams& prm = ctx_->params();
  for (std::uint64_t p = 0; p < slots_.size(); ++p) {
    const std::uint64_t v = slots_[p];
    if (v == kEmpty) continue;
    const int t = prm.table_of(p);
    int t_other = -1;
    for (int u = 0; u < 3; ++u) {
      if (u != t && slots_[position(u, v)] == v) t_other = u;
    }
    REPRO_CHECK(t_other != -1);
    values[p] = v;
    last[p] = is_last_occurrence(t, t_other) ? 1 : 0;
  }
  return ReferenceBatmap(range_, std::move(values), std::move(last));
}

Batmap build_batmap(const BatmapContext& ctx,
                    std::span<const std::uint64_t> elements,
                    std::vector<std::uint64_t>* failed,
                    BatmapBuilder::Options opt) {
  BatmapBuilder b(ctx, ctx.params().range_for_size(elements.size()), opt);
  for (const std::uint64_t x : elements) b.insert(x);
  if (failed) {
    failed->insert(failed->end(), b.failures().begin(), b.failures().end());
  }
  return b.seal();
}

Batmap build_batmap_arena(const BatmapContext& ctx,
                          std::span<const std::uint64_t> elements,
                          util::Arena& arena,
                          std::vector<std::uint64_t>* failed,
                          BatmapBuilder::Options opt) {
  Batmap out;
  {
    BatmapBuilder b(ctx, ctx.params().range_for_size(elements.size()), opt,
                    arena);
    for (const std::uint64_t x : elements) b.insert(x);
    if (failed) {
      failed->insert(failed->end(), b.failures().begin(), b.failures().end());
    }
    out = b.seal();
  }
  arena.reset();
  return out;
}

}  // namespace repro::batmap
