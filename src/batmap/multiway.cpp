#include "batmap/multiway.hpp"

#include <algorithm>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace repro::batmap {

MultiwayContext::MultiwayContext(std::uint64_t universe, int d,
                                 std::uint64_t seed)
    : m_(universe), d_(d) {
  REPRO_CHECK_MSG(universe >= 1, "universe must be non-empty");
  REPRO_CHECK_MSG(d >= 2 && d <= 15, "d must be in [2, 15] (hole fits 4 bits)");
  unsigned s = 0;
  while ((((m_ - 1) >> s) + 1) > 4095) ++s;
  s_ = s;
  std::uint32_t r0 = 4;
  if (s > 0) {
    const std::uint64_t floor = 1ull << s;
    while (r0 < floor) r0 *= 2;
  }
  r0_ = r0;
  SplitMix64 sm(seed);
  perms_.reserve(static_cast<std::size_t>(d + 1));
  for (int t = 0; t <= d; ++t) {
    perms_.emplace_back(universe, sm.next());
  }
}

std::uint32_t MultiwayContext::range_for_size(std::uint64_t size) const {
  // Unlike the 2-of-3 case, an element of a d-of-(d+1) map has only ONE
  // spare table, so any element involved in two unresolvable collisions
  // fails. Empirically (see bench/ablation_insertion and multiway_test) the
  // failure rate only vanishes once r = Ω(d·|S|); we use r ∈ [2d|S|, 4d|S|).
  // This quadratic-in-d space cost is a genuine finding about the paper's
  // §V proposal, documented in DESIGN.md.
  std::uint64_t r = (size == 0)
                        ? r0_
                        : 2ull * bits::next_pow2(static_cast<std::uint64_t>(d_) *
                                                 size);
  if (r < r0_) r = r0_;
  REPRO_CHECK_MSG(r <= 0xffffffffull, "set too large");
  return static_cast<std::uint32_t>(r);
}

GeneralBatmapBuilder::GeneralBatmapBuilder(const MultiwayContext& ctx,
                                           std::uint32_t range, int max_loop)
    : ctx_(&ctx), range_(range), max_loop_(max_loop) {
  REPRO_CHECK(bits::is_pow2(range) && range >= ctx.r0());
  REPRO_CHECK(max_loop >= 1);
  values_.assign(static_cast<std::uint64_t>(ctx.tables()) * range, kEmpty);
}

std::uint64_t GeneralBatmapBuilder::walk(std::uint64_t x, int /*unused*/) {
  std::uint64_t tau = x;
  for (int round = 0; round < max_loop_; ++round) {
    for (int t = 0; t < ctx_->tables(); ++t) {
      std::uint64_t& slot = values_[position(t, tau)];
      std::swap(tau, slot);
      if (tau == kEmpty) return kEmpty;
    }
  }
  return tau;
}

void GeneralBatmapBuilder::remove_all(std::uint64_t x) {
  for (int t = 0; t < ctx_->tables(); ++t) {
    std::uint64_t& slot = values_[position(t, x)];
    if (slot == x) slot = kEmpty;
  }
}

int GeneralBatmapBuilder::copies_placed(std::uint64_t x) const {
  int copies = 0;
  for (int t = 0; t < ctx_->tables(); ++t) {
    copies += (values_[position(t, x)] == x);
  }
  return copies;
}

bool GeneralBatmapBuilder::insert(std::uint64_t x) {
  REPRO_CHECK_MSG(x < ctx_->universe(), "element outside universe");
  REPRO_DCHECK(copies_placed(x) == 0);
  for (int copy = 0; copy < ctx_->d(); ++copy) {
    const std::uint64_t nestless = walk(x, 0);
    if (nestless != kEmpty) {
      // Failure handling mirrors the 2-of-3 builder: drop x entirely, then
      // give the evicted survivor one repair walk (cascade bounded to the
      // chain length; evicted elements that cannot be repaired are dropped
      // and recorded).
      remove_all(x);
      failures_.push_back(x);
      std::uint64_t pending = nestless;
      for (int rounds = 0; rounds < 8 && pending != x && pending != kEmpty;
           ++rounds) {
        const std::uint64_t evicted = walk(pending, 0);
        if (evicted == kEmpty) return false;
        if (evicted == pending) break;
        pending = evicted;
      }
      if (pending != x && pending != kEmpty) {
        remove_all(pending);
        failures_.push_back(pending);
      }
      return false;
    }
  }
  return true;
}

void GeneralBatmapBuilder::check_invariants() const {
  std::vector<std::uint64_t> seen;
  for (std::uint64_t p = 0; p < values_.size(); ++p) {
    const std::uint64_t v = values_[p];
    if (v == kEmpty) continue;
    const int t = ctx_->table_of(p);
    REPRO_CHECK_MSG(position(t, v) == p, "value at wrong position");
    seen.push_back(v);
  }
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size();) {
    std::size_t j = i;
    while (j < seen.size() && seen[j] == seen[i]) ++j;
    REPRO_CHECK_MSG(j - i == static_cast<std::size_t>(ctx_->d()),
                    "value does not occur exactly d times");
    i = j;
  }
}

GeneralBatmap GeneralBatmapBuilder::seal() const {
  std::vector<std::uint16_t> slots(values_.size(), 0);
  std::uint64_t occupied = 0;
  for (std::uint64_t p = 0; p < values_.size(); ++p) {
    const std::uint64_t v = values_[p];
    if (v == kEmpty) continue;
    ++occupied;
    // The hole is the unique table without a copy of v.
    int hole = -1;
    for (int t = 0; t < ctx_->tables(); ++t) {
      if (values_[position(t, v)] != v) {
        REPRO_CHECK_MSG(hole == -1, "more than one hole");
        hole = t;
      }
    }
    REPRO_CHECK_MSG(hole != -1, "element stored in every table");
    const int t = ctx_->table_of(p);
    slots[p] = GeneralBatmap::pack(hole, ctx_->code(ctx_->permuted(t, v)));
  }
  return GeneralBatmap(range_, std::move(slots),
                       occupied / static_cast<std::uint64_t>(ctx_->d()));
}

GeneralBatmap build_general_batmap(const MultiwayContext& ctx,
                                   std::span<const std::uint64_t> elements,
                                   std::vector<std::uint64_t>* failed) {
  GeneralBatmapBuilder b(ctx, ctx.range_for_size(elements.size()));
  for (const std::uint64_t x : elements) b.insert(x);
  if (failed) {
    failed->insert(failed->end(), b.failures().begin(), b.failures().end());
  }
  return b.seal();
}

std::uint64_t multiway_intersect_count(
    const MultiwayContext& ctx,
    std::span<const GeneralBatmap* const> maps) {
  REPRO_CHECK_MSG(maps.size() >= 2, "need at least two sets");
  REPRO_CHECK_MSG(static_cast<int>(maps.size()) <= ctx.d(),
                  "witness guarantee requires k <= d");
  // Same-range requirement keeps the sweep a plain zip; nested sizes would
  // wrap exactly as in the 2-of-3 case (same layout algebra).
  const std::uint32_t r = maps[0]->range();
  for (const auto* m : maps) {
    REPRO_CHECK_MSG(m->range() == r, "maps must share a range");
  }
  const std::uint64_t slots = maps[0]->slot_count();
  std::uint64_t count = 0;
  for (std::uint64_t p = 0; p < slots; ++p) {
    const std::uint16_t first = maps[0]->slot(p);
    const std::uint16_t code = GeneralBatmap::code_of(first);
    if (code == 0) continue;
    bool all = true;
    std::uint32_t hole_mask = 1u << GeneralBatmap::hole_of(first);
    for (std::size_t i = 1; i < maps.size(); ++i) {
      const std::uint16_t s = maps[i]->slot(p);
      if (GeneralBatmap::code_of(s) != code) {
        all = false;
        break;
      }
      hole_mask |= 1u << GeneralBatmap::hole_of(s);
    }
    if (!all) continue;
    // Count only at the FIRST witnessing table: every earlier table must be
    // some set's hole.
    const int t = ctx.table_of(p);
    const std::uint32_t below = (1u << t) - 1;
    if ((hole_mask & below) == below) ++count;
  }
  return count;
}

std::uint64_t multiway_count_via_counters(
    const BatmapContext& ctx, const Batmap& base,
    std::span<const std::uint64_t> base_elements,
    std::span<const Batmap* const> others) {
  REPRO_CHECK_MSG(!others.empty(), "need at least one other set");
  REPRO_CHECK_MSG(base.stored_elements() == base_elements.size(),
                  "base map has insertion failures; patch before counting");
  const std::uint64_t base_slots = base.slot_count();
  std::vector<std::uint16_t> counters(base_slots, 0);

  // One aligned pair sweep per other map, crediting the base position of
  // the (exactly one) counted match per common element.
  for (const Batmap* other : others) {
    const std::uint64_t other_slots = other->slot_count();
    const std::uint64_t big = std::max(base_slots, other_slots);
    for (std::uint64_t p = 0; p < big; ++p) {
      const std::uint64_t pb = p % base_slots;
      const std::uint64_t po = p % other_slots;
      const std::uint8_t a = base.slot(pb);
      const std::uint8_t b = other->slot(po);
      if (((a ^ b) & 0x7f) == 0 && ((a | b) & 0x80)) {
        ++counters[pb];
      }
    }
  }

  // Decode pass: element x lies in all sets iff its two occurrence counters
  // sum to the number of other sets.
  const auto k_minus_1 = static_cast<std::uint64_t>(others.size());
  const LayoutParams& prm = ctx.params();
  std::uint64_t count = 0;
  for (const std::uint64_t x : base_elements) {
    std::uint64_t total = 0;
    int occurrences = 0;
    for (int t = 0; t < 3; ++t) {
      const std::uint64_t v = ctx.permuted(t, x);
      const std::uint64_t p = prm.position(v, t, base.range());
      const std::uint8_t slot = base.slot(p);
      if (slot != kNullSlot &&
          static_cast<std::uint8_t>(slot & 0x7f) == prm.code(v)) {
        total += counters[p];
        ++occurrences;
      }
    }
    REPRO_CHECK_MSG(occurrences == 2, "base element not stored twice");
    if (total == k_minus_1) ++count;
  }
  return count;
}

}  // namespace repro::batmap
