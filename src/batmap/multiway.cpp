#include "batmap/multiway.hpp"

#include <algorithm>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace repro::batmap {

MultiwayContext::MultiwayContext(std::uint64_t universe, int d,
                                 std::uint64_t seed)
    : m_(universe), d_(d) {
  REPRO_CHECK_MSG(universe >= 1, "universe must be non-empty");
  REPRO_CHECK_MSG(d >= 2 && d <= 15, "d must be in [2, 15] (hole fits 4 bits)");
  unsigned s = 0;
  while ((((m_ - 1) >> s) + 1) > 4095) ++s;
  s_ = s;
  std::uint32_t r0 = 4;
  if (s > 0) {
    const std::uint64_t floor = 1ull << s;
    while (r0 < floor) r0 *= 2;
  }
  r0_ = r0;
  SplitMix64 sm(seed);
  perms_.reserve(static_cast<std::size_t>(d + 1));
  for (int t = 0; t <= d; ++t) {
    perms_.emplace_back(universe, sm.next());
  }
}

std::uint32_t MultiwayContext::range_for_size(std::uint64_t size) const {
  // Unlike the 2-of-3 case, an element of a d-of-(d+1) map has only ONE
  // spare table, so any element involved in two unresolvable collisions
  // fails. Empirically (see bench/ablation_insertion and multiway_test) the
  // failure rate only vanishes once r = Ω(d·|S|); we use r ∈ [2d|S|, 4d|S|).
  // This quadratic-in-d space cost is a genuine finding about the paper's
  // §V proposal, documented in DESIGN.md.
  std::uint64_t r = (size == 0)
                        ? r0_
                        : 2ull * bits::next_pow2(static_cast<std::uint64_t>(d_) *
                                                 size);
  if (r < r0_) r = r0_;
  REPRO_CHECK_MSG(r <= 0xffffffffull, "set too large");
  return static_cast<std::uint32_t>(r);
}

GeneralBatmapBuilder::GeneralBatmapBuilder(const MultiwayContext& ctx,
                                           std::uint32_t range, int max_loop)
    : ctx_(&ctx), range_(range), max_loop_(max_loop) {
  REPRO_CHECK(bits::is_pow2(range) && range >= ctx.r0());
  REPRO_CHECK(max_loop >= 1);
  values_.assign(static_cast<std::uint64_t>(ctx.tables()) * range, kEmpty);
}

std::uint64_t GeneralBatmapBuilder::walk(std::uint64_t x, int /*unused*/) {
  std::uint64_t tau = x;
  for (int round = 0; round < max_loop_; ++round) {
    for (int t = 0; t < ctx_->tables(); ++t) {
      std::uint64_t& slot = values_[position(t, tau)];
      std::swap(tau, slot);
      if (tau == kEmpty) return kEmpty;
    }
  }
  return tau;
}

void GeneralBatmapBuilder::remove_all(std::uint64_t x) {
  for (int t = 0; t < ctx_->tables(); ++t) {
    std::uint64_t& slot = values_[position(t, x)];
    if (slot == x) slot = kEmpty;
  }
}

int GeneralBatmapBuilder::copies_placed(std::uint64_t x) const {
  int copies = 0;
  for (int t = 0; t < ctx_->tables(); ++t) {
    copies += (values_[position(t, x)] == x);
  }
  return copies;
}

bool GeneralBatmapBuilder::insert(std::uint64_t x) {
  REPRO_CHECK_MSG(x < ctx_->universe(), "element outside universe");
  REPRO_DCHECK(copies_placed(x) == 0);
  for (int copy = 0; copy < ctx_->d(); ++copy) {
    const std::uint64_t nestless = walk(x, 0);
    if (nestless != kEmpty) {
      // Failure handling mirrors the 2-of-3 builder: drop x entirely, then
      // give the evicted survivor one repair walk (cascade bounded to the
      // chain length; evicted elements that cannot be repaired are dropped
      // and recorded).
      remove_all(x);
      failures_.push_back(x);
      std::uint64_t pending = nestless;
      for (int rounds = 0; rounds < 8 && pending != x && pending != kEmpty;
           ++rounds) {
        const std::uint64_t evicted = walk(pending, 0);
        if (evicted == kEmpty) return false;
        if (evicted == pending) break;
        pending = evicted;
      }
      if (pending != x && pending != kEmpty) {
        remove_all(pending);
        failures_.push_back(pending);
      }
      return false;
    }
  }
  return true;
}

void GeneralBatmapBuilder::check_invariants() const {
  std::vector<std::uint64_t> seen;
  for (std::uint64_t p = 0; p < values_.size(); ++p) {
    const std::uint64_t v = values_[p];
    if (v == kEmpty) continue;
    const int t = ctx_->table_of(p);
    REPRO_CHECK_MSG(position(t, v) == p, "value at wrong position");
    seen.push_back(v);
  }
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size();) {
    std::size_t j = i;
    while (j < seen.size() && seen[j] == seen[i]) ++j;
    REPRO_CHECK_MSG(j - i == static_cast<std::size_t>(ctx_->d()),
                    "value does not occur exactly d times");
    i = j;
  }
}

GeneralBatmap GeneralBatmapBuilder::seal() const {
  std::vector<std::uint16_t> slots(values_.size(), 0);
  std::uint64_t occupied = 0;
  for (std::uint64_t p = 0; p < values_.size(); ++p) {
    const std::uint64_t v = values_[p];
    if (v == kEmpty) continue;
    ++occupied;
    // The hole is the unique table without a copy of v.
    int hole = -1;
    for (int t = 0; t < ctx_->tables(); ++t) {
      if (values_[position(t, v)] != v) {
        REPRO_CHECK_MSG(hole == -1, "more than one hole");
        hole = t;
      }
    }
    REPRO_CHECK_MSG(hole != -1, "element stored in every table");
    const int t = ctx_->table_of(p);
    slots[p] = GeneralBatmap::pack(hole, ctx_->code(ctx_->permuted(t, v)));
  }
  return GeneralBatmap(range_, std::move(slots),
                       occupied / static_cast<std::uint64_t>(ctx_->d()));
}

GeneralBatmap build_general_batmap(const MultiwayContext& ctx,
                                   std::span<const std::uint64_t> elements,
                                   std::vector<std::uint64_t>* failed) {
  GeneralBatmapBuilder b(ctx, ctx.range_for_size(elements.size()));
  for (const std::uint64_t x : elements) b.insert(x);
  if (failed) {
    failed->insert(failed->end(), b.failures().begin(), b.failures().end());
  }
  return b.seal();
}

std::uint64_t multiway_intersect_count(
    const MultiwayContext& ctx,
    std::span<const GeneralBatmap* const> maps) {
  REPRO_CHECK_MSG(maps.size() >= 2, "need at least two sets");
  REPRO_CHECK_MSG(static_cast<int>(maps.size()) <= ctx.d(),
                  "witness guarantee requires k <= d");
  // Same-range requirement keeps the sweep a plain zip; nested sizes would
  // wrap exactly as in the 2-of-3 case (same layout algebra).
  const std::uint32_t r = maps[0]->range();
  for (const auto* m : maps) {
    REPRO_CHECK_MSG(m->range() == r, "maps must share a range");
  }
  const std::uint64_t slots = maps[0]->slot_count();
  std::uint64_t count = 0;
  for (std::uint64_t p = 0; p < slots; ++p) {
    const std::uint16_t first = maps[0]->slot(p);
    const std::uint16_t code = GeneralBatmap::code_of(first);
    if (code == 0) continue;
    bool all = true;
    std::uint32_t hole_mask = 1u << GeneralBatmap::hole_of(first);
    for (std::size_t i = 1; i < maps.size(); ++i) {
      const std::uint16_t s = maps[i]->slot(p);
      if (GeneralBatmap::code_of(s) != code) {
        all = false;
        break;
      }
      hole_mask |= 1u << GeneralBatmap::hole_of(s);
    }
    if (!all) continue;
    // Count only at the FIRST witnessing table: every earlier table must be
    // some set's hole.
    const int t = ctx.table_of(p);
    const std::uint32_t below = (1u << t) - 1;
    if ((hole_mask & below) == below) ++count;
  }
  return count;
}

namespace {

inline std::uint8_t slot_at(std::span<const std::uint32_t> words,
                            std::uint64_t p) {
  return static_cast<std::uint8_t>(words[p >> 2] >> (8 * (p & 3)));
}

inline bool slot_match(std::uint8_t a, std::uint8_t b) {
  return ((a ^ b) & 0x7f) == 0 && ((a | b) & 0x80);
}

/// Galloping lower_bound: first index in v[lo, |v|) with v[idx] >= x.
std::size_t gallop_to(std::span<const std::uint64_t> v, std::size_t lo,
                      std::uint64_t x) {
  std::size_t step = 1;
  std::size_t hi = lo;
  while (hi < v.size() && v[hi] < x) {
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  if (hi > v.size()) hi = v.size();
  return static_cast<std::size_t>(
      std::lower_bound(v.begin() + static_cast<std::ptrdiff_t>(lo),
                       v.begin() + static_cast<std::ptrdiff_t>(hi), x) -
      v.begin());
}

}  // namespace

std::size_t gallop_intersect(std::span<const std::uint64_t> a,
                             std::span<const std::uint64_t> b,
                             std::uint64_t* out) {
  if (a.size() > b.size()) std::swap(a, b);
  std::size_t n = 0;
  std::size_t j = 0;
  for (const std::uint64_t x : a) {
    j = gallop_to(b, j, x);
    if (j == b.size()) break;
    if (b[j] == x) {
      out[n++] = x;
      ++j;
    }
  }
  return n;
}

void accumulate_pair_counters(std::span<const std::uint32_t> base_words,
                              std::span<const std::uint32_t> other_words,
                              std::span<std::uint32_t> counters) {
  const std::uint64_t base_slots = base_words.size() * 4;
  const std::uint64_t other_slots = other_words.size() * 4;
  REPRO_CHECK(counters.size() == base_slots);
  REPRO_CHECK(base_slots > 0 && other_slots > 0);
  if (base_slots >= other_slots) {
    // Nesting lemma: pos_small = pos_big mod 3r_small, and 3·2^j widths mean
    // other_slots divides base_slots — sweep base in other-sized blocks.
    REPRO_CHECK(base_slots % other_slots == 0);
    for (std::uint64_t off = 0; off < base_slots; off += other_slots) {
      for (std::uint64_t p = 0; p < other_slots; ++p) {
        if (slot_match(slot_at(base_words, off + p),
                       slot_at(other_words, p))) {
          ++counters[off + p];
        }
      }
    }
  } else {
    REPRO_CHECK(other_slots % base_slots == 0);
    for (std::uint64_t off = 0; off < other_slots; off += base_slots) {
      for (std::uint64_t p = 0; p < base_slots; ++p) {
        if (slot_match(slot_at(base_words, p),
                       slot_at(other_words, off + p))) {
          ++counters[p];
        }
      }
    }
  }
}

std::uint64_t decode_counter_matches(const BatmapContext& ctx,
                                     std::span<const std::uint32_t> base_words,
                                     std::uint32_t base_range,
                                     std::span<const std::uint64_t> elems,
                                     std::span<const std::uint32_t> counters,
                                     std::uint64_t needed) {
  const LayoutParams& prm = ctx.params();
  std::uint64_t count = 0;
  for (const std::uint64_t x : elems) {
    std::uint64_t total = 0;
    int occurrences = 0;
    for (int t = 0; t < 3; ++t) {
      const std::uint64_t v = ctx.permuted(t, x);
      const std::uint64_t p = prm.position(v, t, base_range);
      const std::uint8_t slot = slot_at(base_words, p);
      if (slot != kNullSlot &&
          static_cast<std::uint8_t>(slot & 0x7f) == prm.code(v)) {
        total += counters[p];
        ++occurrences;
      }
    }
    REPRO_CHECK_MSG(occurrences == 2, "base element not stored twice");
    if (total == needed) ++count;
  }
  return count;
}

std::uint64_t multiway_count_via_counters(
    const BatmapContext& ctx, const Batmap& base,
    std::span<const std::uint64_t> base_elements,
    std::span<const Batmap* const> others) {
  REPRO_CHECK_MSG(!others.empty(), "need at least one other set");
  REPRO_CHECK_MSG(base.stored_elements() == base_elements.size(),
                  "base map has insertion failures; patch before counting");
  const std::uint64_t base_slots = base.slot_count();
  // Worst-case credit per base position is one per aligned other block, so
  // the per-position bound is Σ max(1, other_slots/base_slots). The counters
  // are 32-bit; check the bound so a pathological mix cannot wrap (the old
  // uint16_t counters could: a single other with slot ratio > 65535 wraps a
  // counter back to a small value that can falsely equal k−1).
  std::uint64_t max_credit = 0;
  for (const Batmap* other : others) {
    max_credit += std::max<std::uint64_t>(1, other->slot_count() / base_slots);
  }
  REPRO_CHECK_MSG(max_credit <= 0xffffffffull,
                  "counter bound exceeds 32 bits; widen counters");
  std::vector<std::uint32_t> counters(base_slots, 0);

  // One aligned pair sweep per other map, crediting the base position of
  // the (exactly one) counted match per common element.
  for (const Batmap* other : others) {
    accumulate_pair_counters(base.words(), other->words(), counters);
  }

  // Decode pass: element x lies in all sets iff its two occurrence counters
  // sum to the number of other sets.
  return decode_counter_matches(ctx, base.words(), base.range(), base_elements,
                                counters, others.size());
}

}  // namespace repro::batmap
