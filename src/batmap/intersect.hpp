// High-level public API for batmap set intersection.
//
// BatmapStore owns a universe context and a collection of sets; it builds a
// compressed batmap per set and answers exact intersection-size queries,
// transparently patching the (rare) cuckoo insertion failures: an element
// x ∈ S_a ∩ S_b is counted by the batmap sweep iff it is represented in both
// maps, so the exact answer is
//
//   count(B_a, B_b) + |(F_a ∪ F_b) ∩ S_a ∩ S_b|
//
// where F_i is the failure list of set i (almost always empty).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "batmap/batmap.hpp"
#include "batmap/builder.hpp"
#include "batmap/context.hpp"

namespace repro::batmap {

class BatmapStore {
 public:
  struct Options {
    std::uint64_t seed = 0x9d2c5680;
    BatmapBuilder::Options builder{};
    /// Keep sorted element lists for exact failure patching (and decode
    /// checks). Disable only if you can tolerate undercounts on failures.
    bool keep_elements = true;
  };

  explicit BatmapStore(std::uint64_t universe);
  BatmapStore(std::uint64_t universe, Options opt);

  /// Adds a set (elements < universe, duplicates ignored); returns its id.
  std::size_t add(std::span<const std::uint64_t> elements);

  std::size_t size() const { return maps_.size(); }
  std::uint64_t universe() const { return ctx_.universe(); }
  const BatmapContext& context() const { return ctx_; }
  /// Hash seed the context was built with (snapshots persist it so a
  /// reader can rebuild identical permutations).
  std::uint64_t seed() const { return opt_.seed; }

  const Batmap& map(std::size_t id) const;
  /// All batmaps, in id order (contiguous; feed to pack_sorted_maps).
  std::span<const Batmap> maps() const { return maps_; }
  std::span<const std::uint64_t> failures(std::size_t id) const;
  std::span<const std::uint64_t> elements(std::size_t id) const;

  /// Exact |S_a ∩ S_b| (batmap sweep + failure patch).
  std::uint64_t intersection_size(std::size_t a, std::size_t b) const;

  /// The raw, unpatched sweep count (what the device kernel produces).
  std::uint64_t raw_count(std::size_t a, std::size_t b) const;

  /// Bytes held by the compressed batmaps only (the "device footprint").
  std::uint64_t batmap_bytes() const;
  /// Bytes held by everything (maps + retained element lists + failures).
  std::uint64_t memory_bytes() const;

  /// Total insertion failures across all sets.
  std::uint64_t total_failures() const;

  /// Binary serialization: writes universe, seed, and every map (packed
  /// words + failure + element lists) so a store can be reloaded without
  /// re-running cuckoo insertion. The format is versioned and carries an
  /// FNV-1a digest of the whole payload; load() rejects mismatching
  /// magic/version, truncation, and any byte-level corruption.
  void save(std::ostream& out) const;
  static BatmapStore load(std::istream& in);

 private:
  BatmapContext ctx_;
  Options opt_;
  std::vector<Batmap> maps_;
  std::vector<std::vector<std::uint64_t>> failed_;
  std::vector<std::vector<std::uint64_t>> elements_;  // sorted, deduplicated
};

/// Exact patched intersection for two independently built sets.
/// `sorted_a`/`sorted_b` are the full sorted element lists.
std::uint64_t patched_intersect_count(
    const Batmap& map_a, std::span<const std::uint64_t> failed_a,
    std::span<const std::uint64_t> sorted_a, const Batmap& map_b,
    std::span<const std::uint64_t> failed_b,
    std::span<const std::uint64_t> sorted_b);

/// The failure correction alone: |(F_a ∪ F_b) ∩ S_a ∩ S_b| over sorted
/// lists, by galloping merge. patched count = raw sweep count + this
/// (zero whenever both failure lists are empty — the usual case).
std::uint64_t failure_patch_correction(std::span<const std::uint64_t> failed_a,
                                       std::span<const std::uint64_t> sorted_a,
                                       std::span<const std::uint64_t> failed_b,
                                       std::span<const std::uint64_t> sorted_b);

}  // namespace repro::batmap
