#include "batmap/reference.hpp"

#include "util/check.hpp"

namespace repro::batmap {

ReferenceBatmap::ReferenceBatmap(std::uint32_t range,
                                 std::vector<std::uint64_t> values,
                                 std::vector<std::uint8_t> last_bits)
    : range_(range), values_(std::move(values)), last_bits_(std::move(last_bits)) {
  REPRO_CHECK(values_.size() == LayoutParams::slots(range));
  REPRO_CHECK(last_bits_.size() == values_.size());
}

std::uint64_t intersect_count_reference(const ReferenceBatmap& a,
                                        const ReferenceBatmap& b) {
  const ReferenceBatmap& big = a.slot_count() >= b.slot_count() ? a : b;
  const ReferenceBatmap& small = a.slot_count() >= b.slot_count() ? b : a;
  REPRO_CHECK(small.slot_count() > 0);
  REPRO_CHECK(big.slot_count() % small.slot_count() == 0);
  std::uint64_t count = 0;
  const std::uint64_t ws = small.slot_count();
  for (std::uint64_t p = 0; p < big.slot_count(); ++p) {
    const std::uint64_t q = p % ws;
    if (big.value(p) == ReferenceBatmap::kEmpty ||
        big.value(p) != small.value(q))
      continue;
    if (big.last_bit(p) || small.last_bit(q)) ++count;
  }
  return count;
}

}  // namespace repro::batmap
