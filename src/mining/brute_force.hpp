// Exact brute-force pair supports — the oracle every other implementation is
// validated against in tests. O(Σ|T|²) time, O(n²) space: only for small
// instances.
#pragma once

#include <cstdint>

#include "mining/pair_support.hpp"
#include "mining/transaction_db.hpp"

namespace repro::mining {

/// Support of every item pair by direct counting over transactions.
PairSupports brute_force_pair_supports(const TransactionDb& db);

}  // namespace repro::mining
