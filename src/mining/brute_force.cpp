#include "mining/brute_force.hpp"

namespace repro::mining {

PairSupports brute_force_pair_supports(const TransactionDb& db) {
  REPRO_CHECK_MSG(db.num_items() >= 2, "need at least two items");
  PairSupports supports(db.num_items());
  for (const auto& txn : db.transactions()) {
    for (std::size_t a = 0; a < txn.size(); ++a) {
      for (std::size_t b = a + 1; b < txn.size(); ++b) {
        supports.increment(txn[a], txn[b]);
      }
    }
  }
  return supports;
}

}  // namespace repro::mining
