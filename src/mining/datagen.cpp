#include "mining/datagen.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace repro::mining {

TransactionDb bernoulli_instance(const BernoulliSpec& spec) {
  REPRO_CHECK(spec.num_items >= 1);
  REPRO_CHECK(spec.density > 0.0 && spec.density <= 1.0);
  Xoshiro256 rng(spec.seed);
  TransactionDb db(spec.num_items);
  const double p = spec.density;
  while (db.total_items() < spec.total_items) {
    std::vector<Item> txn;
    txn.reserve(static_cast<std::size_t>(p * spec.num_items * 1.3) + 4);
    if (p >= 0.05) {
      // Dense regime: straight Bernoulli per item.
      for (Item i = 0; i < spec.num_items; ++i) {
        if (rng.bernoulli(p)) txn.push_back(i);
      }
    } else {
      // Sparse regime: geometric gap skipping, identical distribution.
      const double log1mp = std::log1p(-p);
      double i = -1.0;
      for (;;) {
        const double u = rng.uniform();
        i += 1.0 + std::floor(std::log1p(-u) / log1mp);
        if (i >= static_cast<double>(spec.num_items)) break;
        txn.push_back(static_cast<Item>(i));
      }
    }
    db.add_transaction(std::move(txn));
  }
  return db;
}

ZipfSampler::ZipfSampler(std::uint32_t n, double s) {
  REPRO_CHECK(n >= 1);
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::uint32_t ZipfSampler::sample(double u01) const {
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u01);
  if (it == cdf_.end()) return static_cast<std::uint32_t>(cdf_.size() - 1);
  return static_cast<std::uint32_t>(it - cdf_.begin());
}

TransactionDb webdocs_like(const WebDocsSpec& spec) {
  REPRO_CHECK(spec.num_docs >= 1);
  Xoshiro256 rng(spec.seed);
  TransactionDb db;
  // Full vocabulary after num_docs documents.
  const auto vocab_at = [&](std::size_t t) -> std::uint32_t {
    const double v = spec.heaps_k *
                     std::pow(static_cast<double>(t + 1), spec.heaps_beta);
    return std::max<std::uint32_t>(4, static_cast<std::uint32_t>(v));
  };
  const std::uint32_t max_vocab = vocab_at(spec.num_docs - 1);
  ZipfSampler zipf(max_vocab, spec.zipf_exponent);
  for (std::size_t t = 0; t < spec.num_docs; ++t) {
    // Document length: geometric around the mean, at least 1.
    const double u = rng.uniform();
    const std::size_t len = 1 + static_cast<std::size_t>(
        -std::log1p(-u) * (spec.mean_doc_len - 1.0));
    const std::uint32_t vocab = vocab_at(t);
    std::vector<Item> doc;
    doc.reserve(len);
    for (std::size_t w = 0; w < len; ++w) {
      // Rank-sampled Zipf word, truncated to the vocabulary available at
      // time t so early prefixes have few distinct items.
      std::uint32_t word = zipf.sample(rng.uniform());
      if (word >= vocab) word = static_cast<std::uint32_t>(rng.below(vocab));
      doc.push_back(word);
    }
    db.add_transaction(std::move(doc));
  }
  return db;
}

}  // namespace repro::mining
