// Synthetic workload generators matching the paper's experiments.
//
// * bernoulli_instance — the paper's main generator (§IV-A): "for each
//   transaction, include each of the n distinct items with probability p,
//   and continue adding transactions until the desired total instance size
//   is reached."
// * webdocs_like — stand-in for the WebDocs dataset (Fig 10): documents of
//   Zipf-distributed words with Heaps-law vocabulary growth, so the number
//   of distinct items grows quickly with the prefix size, which is the
//   property the paper's Fig 10 exercises.
#pragma once

#include <cstdint>

#include "mining/transaction_db.hpp"

namespace repro::mining {

struct BernoulliSpec {
  std::uint32_t num_items = 1000;    ///< n distinct items
  double density = 0.05;             ///< per-item inclusion probability p
  std::uint64_t total_items = 100000;///< stop once this many occurrences
  std::uint64_t seed = 1;
};

TransactionDb bernoulli_instance(const BernoulliSpec& spec);

struct WebDocsSpec {
  std::size_t num_docs = 25600;
  double zipf_exponent = 1.1;   ///< word popularity skew
  double heaps_k = 8.0;         ///< vocabulary V(t) = k * t^beta
  double heaps_beta = 0.65;
  double mean_doc_len = 80.0;   ///< mean words per document
  std::uint64_t seed = 7;
};

TransactionDb webdocs_like(const WebDocsSpec& spec);

/// Zipf sampler over [0, n) with exponent `s` (rejection-inversion-free
/// simple inverse-CDF table; O(n) setup, O(log n) sample).
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double s);
  std::uint32_t sample(double u01) const;  ///< u01 uniform in [0,1)
  std::uint32_t n() const { return static_cast<std::uint32_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace repro::mining
