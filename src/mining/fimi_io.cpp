#include "mining/fimi_io.hpp"

#include <fstream>
#include <istream>

#include "util/check.hpp"

namespace repro::mining {

namespace {

/// Parses one FIMI line into `txn` (cleared first). Blank/whitespace-only
/// lines parse to an empty transaction, which callers skip.
void parse_fimi_line(const std::string& line, std::vector<Item>& txn) {
  txn.clear();
  const char* p = line.c_str();
  const char* end = p + line.size();
  while (p < end) {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
    if (p >= end) break;
    Item v = 0;
    bool any = false;
    while (p < end && *p >= '0' && *p <= '9') {
      v = v * 10 + static_cast<Item>(*p - '0');
      ++p;
      any = true;
    }
    REPRO_CHECK_MSG(any, "malformed FIMI line: " + line);
    txn.push_back(v);
  }
}

}  // namespace

FimiChunkReader::FimiChunkReader(std::istream& in,
                                 std::size_t chunk_transactions,
                                 std::size_t chunk_bytes)
    : in_(&in),
      chunk_transactions_(chunk_transactions),
      chunk_bytes_(chunk_bytes) {
  REPRO_CHECK_MSG(chunk_transactions_ >= 1,
                  "chunk size must be at least one transaction");
}

std::size_t FimiChunkReader::read_into(TransactionDb& db) {
  std::size_t appended = 0;
  std::size_t bytes = 0;
  while (appended < chunk_transactions_ &&
         (chunk_bytes_ == 0 || bytes < chunk_bytes_)) {
    if (!std::getline(*in_, line_)) {
      done_ = true;
      break;
    }
    bytes += line_.size() + 1;  // +1 for the consumed newline
    parse_fimi_line(line_, txn_);
    if (txn_.empty()) continue;
    db.add_transaction(txn_);
    ++appended;
  }
  transactions_read_ += appended;
  return appended;
}

TransactionDb FimiChunkReader::next_chunk() {
  TransactionDb db;
  db.reserve(std::min(chunk_transactions_, std::size_t{1} << 20));
  read_into(db);
  return db;
}

TransactionDb read_fimi(std::istream& in) {
  TransactionDb db;
  FimiChunkReader reader(in);
  while (reader.read_into(db) > 0) {
  }
  return db;
}

TransactionDb read_fimi_file(const std::string& path) {
  std::ifstream f(path);
  REPRO_CHECK_MSG(f.good(), "cannot open " + path);
  return read_fimi(f);
}

void write_fimi(const TransactionDb& db, std::ostream& out) {
  for (std::size_t t = 0; t < db.num_transactions(); ++t) {
    const auto txn = db.transaction(t);
    for (std::size_t i = 0; i < txn.size(); ++i) {
      out << txn[i] << (i + 1 == txn.size() ? "" : " ");
    }
    out << '\n';
  }
}

void write_fimi_file(const TransactionDb& db, const std::string& path) {
  std::ofstream f(path);
  REPRO_CHECK_MSG(f.good(), "cannot open " + path);
  write_fimi(db, f);
}

}  // namespace repro::mining
