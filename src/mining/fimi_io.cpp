#include "mining/fimi_io.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace repro::mining {

TransactionDb read_fimi(std::istream& in) {
  TransactionDb db;
  std::string line;
  std::vector<Item> txn;
  while (std::getline(in, line)) {
    txn.clear();
    const char* p = line.c_str();
    const char* end = p + line.size();
    while (p < end) {
      while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
      if (p >= end) break;
      Item v = 0;
      bool any = false;
      while (p < end && *p >= '0' && *p <= '9') {
        v = v * 10 + static_cast<Item>(*p - '0');
        ++p;
        any = true;
      }
      REPRO_CHECK_MSG(any, "malformed FIMI line: " + line);
      txn.push_back(v);
    }
    if (!txn.empty()) db.add_transaction(txn);
  }
  return db;
}

TransactionDb read_fimi_file(const std::string& path) {
  std::ifstream f(path);
  REPRO_CHECK_MSG(f.good(), "cannot open " + path);
  return read_fimi(f);
}

void write_fimi(const TransactionDb& db, std::ostream& out) {
  for (std::size_t t = 0; t < db.num_transactions(); ++t) {
    const auto txn = db.transaction(t);
    for (std::size_t i = 0; i < txn.size(); ++i) {
      out << txn[i] << (i + 1 == txn.size() ? "" : " ");
    }
    out << '\n';
  }
}

void write_fimi_file(const TransactionDb& db, const std::string& path) {
  std::ofstream f(path);
  REPRO_CHECK_MSG(f.good(), "cannot open " + path);
  write_fimi(db, f);
}

}  // namespace repro::mining
