// Triangular pair-support matrix: the common output type of every pair
// mining implementation in this repo (batmap/GPU, Apriori, FP-growth, Eclat,
// bitmap, merge). Indexed by unordered item pairs {i, j}, i != j.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace repro::mining {

class PairSupports {
 public:
  PairSupports() = default;
  explicit PairSupports(std::uint32_t num_items)
      : n_(num_items),
        counts_(static_cast<std::size_t>(num_items) * (num_items - 1) / 2, 0) {}

  std::uint32_t num_items() const { return n_; }

  std::uint32_t get(std::uint32_t i, std::uint32_t j) const {
    return counts_[index(i, j)];
  }
  void set(std::uint32_t i, std::uint32_t j, std::uint32_t v) {
    counts_[index(i, j)] = v;
  }
  void increment(std::uint32_t i, std::uint32_t j, std::uint32_t by = 1) {
    counts_[index(i, j)] += by;
  }

  /// Number of pairs with support >= minsup.
  std::uint64_t frequent_pairs(std::uint32_t minsup) const {
    std::uint64_t c = 0;
    for (const auto v : counts_)
      if (v >= minsup) ++c;
    return c;
  }

  /// Sum of all supports (used as a cheap equality fingerprint in benches).
  std::uint64_t total_support() const {
    std::uint64_t s = 0;
    for (const auto v : counts_) s += v;
    return s;
  }

  bool operator==(const PairSupports& o) const {
    return n_ == o.n_ && counts_ == o.counts_;
  }

  std::uint64_t memory_bytes() const {
    return counts_.size() * sizeof(std::uint32_t);
  }

  /// Linear index of the unordered pair {i, j} in the upper triangle.
  std::size_t index(std::uint32_t i, std::uint32_t j) const {
    REPRO_DCHECK(i != j && i < n_ && j < n_);
    if (i > j) std::swap(i, j);
    // Row-major upper triangle: offset(i) + (j - i - 1), where offset(i) is
    // the number of pairs with first element < i.
    const std::size_t off =
        static_cast<std::size_t>(i) * (2ull * n_ - i - 1) / 2;
    return off + (j - i - 1);
  }

 private:
  std::uint32_t n_ = 0;
  std::vector<std::uint32_t> counts_;
};

}  // namespace repro::mining
