// Horizontal and vertical transaction representations (paper §I.a).
//
// Horizontal: transactions stored one by one, each a sorted item list.
// Vertical: per item i, the tidlist S_i = { t : i ∈ T_t } — the sets whose
// pairwise intersection sizes are the pair supports.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace repro::mining {

using Item = std::uint32_t;
using Tid = std::uint32_t;

/// A transaction database over items [0, num_items).
class TransactionDb {
 public:
  TransactionDb() = default;
  explicit TransactionDb(Item num_items) : num_items_(num_items) {}

  /// Appends a transaction; items are sorted and deduplicated. Items must be
  /// < num_items (extends num_items if needed).
  void add_transaction(std::vector<Item> items);

  /// Appends every transaction of `other` (chunk assembly for streaming
  /// readers). Equivalent to add_transaction on each, but moves the already
  /// sorted/deduplicated rows instead of re-normalizing them.
  void append(TransactionDb&& other);

  /// Grows the transaction capacity (streaming readers that know a chunk
  /// size avoid reallocation churn).
  void reserve(std::size_t transactions) { txns_.reserve(transactions); }

  std::size_t num_transactions() const { return txns_.size(); }
  Item num_items() const { return num_items_; }
  /// Total number of item occurrences (the paper's "instance size").
  std::uint64_t total_items() const { return total_items_; }
  /// total_items / (num_transactions * num_items) — the paper's density.
  double density() const;

  std::span<const Item> transaction(std::size_t t) const { return txns_[t]; }
  const std::vector<std::vector<Item>>& transactions() const { return txns_; }

  /// Vertical representation: tidlists[i] = sorted transaction ids containing
  /// item i.
  std::vector<std::vector<Tid>> vertical() const;

  /// Per-item supports |S_i|.
  std::vector<std::uint32_t> item_supports() const;

  /// A new database containing only the first `count` transactions (the
  /// paper's WebDocs prefix experiments), with num_items shrunk to the
  /// largest item present + 1.
  TransactionDb prefix(std::size_t count) const;

  /// A new database with items of support < minsup removed and remaining
  /// items re-labelled densely; `mapping` (optional) receives old->new.
  /// (All frequent-itemset methods preprocess this way — paper §I-B2.)
  TransactionDb filter_infrequent(std::uint32_t minsup,
                                  std::vector<Item>* mapping = nullptr) const;

  /// Bytes of the horizontal representation.
  std::uint64_t memory_bytes() const;

 private:
  Item num_items_ = 0;
  std::uint64_t total_items_ = 0;
  std::vector<std::vector<Item>> txns_;
};

}  // namespace repro::mining
