#include "mining/transaction_db.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace repro::mining {

void TransactionDb::add_transaction(std::vector<Item> items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  if (!items.empty() && items.back() >= num_items_) {
    num_items_ = items.back() + 1;
  }
  total_items_ += items.size();
  txns_.push_back(std::move(items));
}

void TransactionDb::append(TransactionDb&& other) {
  num_items_ = std::max(num_items_, other.num_items_);
  total_items_ += other.total_items_;
  if (txns_.empty()) {
    txns_ = std::move(other.txns_);
  } else {
    txns_.reserve(txns_.size() + other.txns_.size());
    for (auto& txn : other.txns_) txns_.push_back(std::move(txn));
  }
  other.txns_.clear();
  other.total_items_ = 0;
}

double TransactionDb::density() const {
  if (txns_.empty() || num_items_ == 0) return 0.0;
  return static_cast<double>(total_items_) /
         (static_cast<double>(txns_.size()) * num_items_);
}

std::vector<std::vector<Tid>> TransactionDb::vertical() const {
  std::vector<std::vector<Tid>> tidlists(num_items_);
  // Pre-size to avoid reallocation churn on big instances.
  std::vector<std::uint32_t> counts(num_items_, 0);
  for (const auto& txn : txns_)
    for (const Item i : txn) ++counts[i];
  for (Item i = 0; i < num_items_; ++i) tidlists[i].reserve(counts[i]);
  for (std::size_t t = 0; t < txns_.size(); ++t)
    for (const Item i : txns_[t]) tidlists[i].push_back(static_cast<Tid>(t));
  return tidlists;
}

std::vector<std::uint32_t> TransactionDb::item_supports() const {
  std::vector<std::uint32_t> counts(num_items_, 0);
  for (const auto& txn : txns_)
    for (const Item i : txn) ++counts[i];
  return counts;
}

TransactionDb TransactionDb::prefix(std::size_t count) const {
  TransactionDb out;
  count = std::min(count, txns_.size());
  for (std::size_t t = 0; t < count; ++t) {
    out.add_transaction(txns_[t]);
  }
  return out;
}

TransactionDb TransactionDb::filter_infrequent(
    std::uint32_t minsup, std::vector<Item>* mapping) const {
  const auto supports = item_supports();
  std::vector<Item> remap(num_items_, static_cast<Item>(-1));
  Item next = 0;
  for (Item i = 0; i < num_items_; ++i) {
    if (supports[i] >= minsup) remap[i] = next++;
  }
  TransactionDb out(next);
  for (const auto& txn : txns_) {
    std::vector<Item> kept;
    kept.reserve(txn.size());
    for (const Item i : txn) {
      if (remap[i] != static_cast<Item>(-1)) kept.push_back(remap[i]);
    }
    if (!kept.empty()) out.add_transaction(std::move(kept));
  }
  if (mapping) *mapping = std::move(remap);
  return out;
}

std::uint64_t TransactionDb::memory_bytes() const {
  std::uint64_t bytes = txns_.size() * sizeof(std::vector<Item>);
  bytes += total_items_ * sizeof(Item);
  return bytes;
}

}  // namespace repro::mining
