// FIMI text format IO (one transaction per line, space-separated item ids) —
// the format of the Frequent Itemset Mining Dataset Repository used by the
// paper's WebDocs experiment. A real WebDocs file can be loaded with
// read_fimi() and fed to the same harness as the synthetic generator.
//
// Loading is chunked: FimiChunkReader parses a bounded number of
// transactions per call, so a multi-gigabyte instance can stream through a
// pipeline — one shard appending tidlists or building its batmap slice
// while the next chunk is still being parsed — instead of forcing the whole
// file into memory before any work starts. read_fimi() is the convenience
// wrapper that drains the reader into one TransactionDb.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "mining/transaction_db.hpp"

namespace repro::mining {

/// Streams a FIMI text stream as TransactionDb chunks of bounded size.
class FimiChunkReader {
 public:
  static constexpr std::size_t kDefaultChunkTransactions = 1 << 16;

  /// The stream must outlive the reader. `chunk_transactions` bounds the
  /// transactions parsed per next_chunk() call (>= 1); `chunk_bytes`
  /// additionally bounds the input text consumed per call (0 = unbounded) —
  /// the memory-budget knob for instances whose transaction sizes vary
  /// wildly (batmap_cli pairs --chunk-bytes). A chunk always makes
  /// progress: the transaction that crosses the byte bound is included.
  explicit FimiChunkReader(
      std::istream& in,
      std::size_t chunk_transactions = kDefaultChunkTransactions,
      std::size_t chunk_bytes = 0);

  /// Parses up to chunk_transactions() more transactions. Returns an empty
  /// db at end of stream. Item universes may differ between chunks (each
  /// chunk's num_items() is its own max item + 1); append() normalizes.
  TransactionDb next_chunk();

  /// Appends up to chunk_transactions() more transactions into `db`.
  /// Returns the number appended; 0 at end of stream.
  std::size_t read_into(TransactionDb& db);

  /// True once the underlying stream is exhausted.
  bool done() const { return done_; }

  std::size_t chunk_transactions() const { return chunk_transactions_; }
  std::size_t chunk_bytes() const { return chunk_bytes_; }
  /// Transactions parsed so far across all chunks.
  std::size_t transactions_read() const { return transactions_read_; }

 private:
  std::istream* in_;
  std::size_t chunk_transactions_;
  std::size_t chunk_bytes_;
  std::size_t transactions_read_ = 0;
  bool done_ = false;
  std::string line_;            // reused line buffer
  std::vector<Item> txn_;       // reused parse buffer
};

TransactionDb read_fimi(std::istream& in);
TransactionDb read_fimi_file(const std::string& path);

void write_fimi(const TransactionDb& db, std::ostream& out);
void write_fimi_file(const TransactionDb& db, const std::string& path);

}  // namespace repro::mining
