// FIMI text format IO (one transaction per line, space-separated item ids) —
// the format of the Frequent Itemset Mining Dataset Repository used by the
// paper's WebDocs experiment. A real WebDocs file can be loaded with
// read_fimi() and fed to the same harness as the synthetic generator.
#pragma once

#include <iosfwd>
#include <string>

#include "mining/transaction_db.hpp"

namespace repro::mining {

TransactionDb read_fimi(std::istream& in);
TransactionDb read_fimi_file(const std::string& path);

void write_fimi(const TransactionDb& db, std::ostream& out);
void write_fimi_file(const TransactionDb& db, const std::string& path);

}  // namespace repro::mining
